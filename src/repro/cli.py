"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the library's main entry points without writing
any code:

* ``run`` — simulate traffic on one RMB ring and print statistics;
* ``chaos`` — soak the ring under a seeded chaos schedule with invariant
  monitors (and, by default, the recovery manager) armed;
* ``race`` — route one permutation family across the comparison networks;
* ``cost`` — print the Section 3.2 hardware cost table;
* ``trace`` — render the compaction process frame by frame (Figures 2/3);
* ``selfcheck`` — validate the protocol implementation in seconds;
* ``explore`` — bounded model checking of the protocol state machines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import cost_table, render_comparison, render_table
from repro.core import Message, RMBConfig, RMBRing
from repro.core.trace_render import render_grid
from repro.networks import (
    EXTRA_NETWORKS,
    PAPER_NETWORKS,
    build_network,
    make_batch,
    permutation_pairs,
)
from repro.arena import DEFAULT_NETWORKS
from repro.sim import RandomStream
from repro.traffic import (
    ARRIVALS,
    FAMILIES,
    bernoulli_schedule,
    generate,
    replay_on_ring,
)


def _add_geometry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", "-n", type=int, default=16,
                        help="ring size N (even, >= 4)")
    parser.add_argument("--lanes", "-k", type=int, default=4,
                        help="bus lanes k")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RMB (HPCA 1996) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="simulate random traffic on an RMB ring")
    _add_geometry(run)
    run.add_argument("--backend", choices=("event", "batch"),
                     default="event",
                     help="execution engine: the event heap (default) or "
                          "the vectorized numpy batch backend — "
                          "bit-identical results on the subset it models "
                          "(synchronous rings, static faults), much "
                          "faster at scale")
    run.add_argument("--topology", default="ring", metavar="SPEC",
                     help="'ring' (flat RMB, default), 'hier' "
                          "(auto-factored hierarchy) or 'hier:MxN' "
                          "(M local rings of N nodes bridged by a global "
                          "ring); hier reports journey-level stats plus a "
                          "per-ring breakdown")
    run.add_argument("--messages", "-m", type=int, default=64,
                     help="number of messages")
    run.add_argument("--flits", "-f", type=int, default=16,
                     help="data flits per message")
    run.add_argument("--rate", type=float, default=0.02,
                     help="per-node injection probability per tick")
    run.add_argument("--asynchronous", action="store_true",
                     help="independent skewed INC clocks (rules 1-5)")
    run.add_argument("--fault-plan", default=None, metavar="SPEC",
                     help="inject faults: 'seg:S,L@T', 'lane:L@T', "
                          "'inc:I@T', 'random:FRAC@T', '+...' to repair, "
                          "';'-separated; or '@plan.json'")
    run.add_argument("--max-retries", type=int, default=None,
                     help="per-message retry cap (default: unlimited; "
                          "8 when a fault plan is given)")
    run.add_argument("--retry-delay", type=float, default=None,
                     metavar="TICKS",
                     help="backoff floor before the first retry "
                          "(default: 16)")
    run.add_argument("--retry-backoff", type=float, default=None,
                     metavar="FACTOR",
                     help="exponential backoff multiplier (default: 2)")
    run.add_argument("--retry-jitter", type=float, default=None,
                     metavar="FRACTION",
                     help="uniform jitter fraction on each backoff delay "
                          "(default: 0.5)")
    run.add_argument("--retry-budget", type=int, default=None, metavar="N",
                     help="lifetime retry budget per source INC; once "
                          "spent, further retries abandon (default: "
                          "unlimited)")
    run.add_argument("--recovery", action="store_true",
                     help="arm the self-healing recovery manager: circuit "
                          "breakers quarantine flapping segments, wedged "
                          "buses are force-evacuated, fault storms tighten "
                          "admission (degraded mode)")
    run.add_argument("--admission-limit", type=int, default=None,
                     metavar="N",
                     help="cap on outstanding requests per source INC")
    run.add_argument("--admission-policy", choices=("defer", "shed"),
                     default="defer",
                     help="what happens to over-limit submissions")
    run.add_argument("--watchdog", action="store_true",
                     help="arm the no-progress watchdog (default windows)")
    run.add_argument("--checkpoint-every", type=float, default=None,
                     metavar="TICKS",
                     help="write a snapshot every TICKS simulated ticks")
    run.add_argument("--checkpoint-file",
                     default="rmb-checkpoint-{tick}.snap", metavar="PATH",
                     help="snapshot path template; '{tick}' expands to the "
                          "snapshot time (default: %(default)s)")
    run.add_argument("--resume-from", default=None, metavar="PATH",
                     help="restore a snapshot and run it to completion "
                          "(other run options are taken from the snapshot)")
    run.add_argument("--stats-json", default=None, metavar="PATH",
                     help="also write the stats summary as JSON")
    run.add_argument("--check-level", choices=("full", "sampled", "off"),
                     default="full",
                     help="runtime invariant monitor frequency: every "
                          "compaction cycle, every 16th, or disabled "
                          "(read-only; results are identical at all levels)")
    run.add_argument("--obs-level", choices=("off", "sampled", "full"),
                     default="off",
                     help="observability level: metrics + per-message spans "
                          "(sampled records 1-in-8 spans; observation is "
                          "passive, results are identical at all levels)")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write metrics in Prometheus text format "
                          "(implies --obs-level full unless set)")
    run.add_argument("--spans-out", default=None, metavar="PATH",
                     help="write per-message span events as JSONL "
                          "(implies --obs-level full unless set)")

    race = commands.add_parser(
        "race", help="race one permutation across all networks")
    _add_geometry(race)
    race.add_argument("--family", choices=sorted(FAMILIES),
                      default="random", help="permutation family")
    race.add_argument("--flits", "-f", type=int, default=16)

    arena = commands.add_parser(
        "arena",
        help="replay identical traffic patterns across topologies and "
             "rank them (the Section 3 comparison, per pattern)",
    )
    _add_geometry(arena)
    arena.add_argument("--patterns", default="ring-shift,transpose,kperm",
                       metavar="SPECS",
                       help="comma-separated pattern specs (families, "
                            "'kperm[:K]', 'uniform', 'hotspot[:F]', "
                            "'local[:R]'; default: %(default)s)")
    arena.add_argument("--networks",
                       default=",".join(DEFAULT_NETWORKS),
                       metavar="NAMES",
                       help="comma-separated registry names "
                            "(default: %(default)s)")
    arena.add_argument("--rounds", type=int, default=1,
                       help="batch rounds per pattern; sustained "
                            "k-permutation traffic uses several "
                            "(default: %(default)s)")
    arena.add_argument("--flits", "-f", type=int, default=16,
                       help="data flits per message")
    arena.add_argument("--max-ticks", type=float, default=2_000_000.0,
                       help="per-network tick budget")
    arena.add_argument("--json", default=None, metavar="PATH",
                       help="also write the arena summary as JSON")

    saturate = commands.add_parser(
        "saturate",
        help="binary-search the injection rate where a traffic pattern's "
             "latency diverges (offered-load sweep)",
    )
    _add_geometry(saturate)
    saturate.add_argument("--pattern", default="uniform", metavar="SPEC",
                          help="traffic pattern spec (default: %(default)s)")
    saturate.add_argument("--backend", choices=("event", "batch"),
                          default="event",
                          help="execution engine for every load point")
    saturate.add_argument("--topology", default="ring", metavar="SPEC",
                          help="'ring' (default), 'hier' or 'hier:MxN'; "
                               "hier judges stability over the whole "
                               "fabric and reports per-ring rates "
                               "(event backend only)")
    saturate.add_argument("--arrival", choices=ARRIVALS,
                          default="bernoulli",
                          help="arrival process (default: %(default)s)")
    saturate.add_argument("--duration", type=float, default=200.0,
                          help="injection horizon per load point, ticks")
    saturate.add_argument("--flits", "-f", type=int, default=4,
                          help="data flits per message")
    saturate.add_argument("--iterations", type=int, default=6,
                          help="bisection steps after bracketing")
    saturate.add_argument("--rate-floor", type=float, default=0.002,
                          help="lowest candidate rate (msgs/node/tick)")
    saturate.add_argument("--rate-ceiling", type=float, default=0.5,
                          help="highest candidate rate (msgs/node/tick)")
    saturate.add_argument("--fault-plan", default=None, metavar="SPEC",
                          help="inject faults at every load point (same "
                               "spec language as 'run'; event backend "
                               "only)")
    saturate.add_argument("--recovery", action="store_true",
                          help="arm the recovery manager at every point "
                               "(event backend only)")
    saturate.add_argument("--admission-limit", type=int, default=None,
                          metavar="N",
                          help="cap on outstanding requests per source "
                               "INC (event backend only)")
    saturate.add_argument("--admission-policy",
                          choices=("defer", "shed"), default="defer",
                          help="what happens to over-limit submissions")
    saturate.add_argument("--json", default=None, metavar="PATH",
                          help="also write the curve summary as JSON")

    cost = commands.add_parser(
        "cost", help="print the Section 3.2 hardware cost table")
    _add_geometry(cost)

    trace = commands.add_parser(
        "trace", help="render the compaction process frame by frame")
    _add_geometry(trace)
    trace.add_argument("--frames", type=int, default=8)
    trace.add_argument("--step", type=float, default=8.0,
                       help="ticks between frames")

    commands.add_parser(
        "selfcheck",
        help="validate the protocol implementation on this machine",
    )

    chaos = commands.add_parser(
        "chaos",
        help="soak the ring under a seeded chaos schedule with invariant "
             "monitors and recovery armed",
    )
    _add_geometry(chaos)
    chaos.add_argument("--ticks", type=float, default=4000.0,
                       help="traffic horizon in ticks (the run then drains)")
    chaos.add_argument("--rate", type=float, default=0.02,
                       help="per-node injection probability per tick")
    chaos.add_argument("--flits", "-f", type=int, default=8,
                       help="data flits per message")
    chaos.add_argument("--spec", default="storm:0.3@500+2000",
                       metavar="SPEC",
                       help="chaos schedule: 'storm:FRAC@T+SPREAD[%%REP]', "
                            "'wave:L@T+STEP', 'flap:NxF@T+PERIOD', "
                            "'incs:N@T+HOLD', ';'-separated "
                            "(default: %(default)s)")
    chaos.add_argument("--no-recovery", action="store_true",
                       help="soak with the recovery loop open (faults only)")
    chaos.add_argument("--asynchronous", action="store_true",
                       help="independent skewed INC clocks (arms the "
                            "Lemma 1 skew monitor)")
    chaos.add_argument("--monitor-period", type=float, default=50.0,
                       help="ticks between invariant sweeps")
    chaos.add_argument("--no-baseline", action="store_true",
                       help="skip the healthy-twin run (no goodput "
                            "retention figure)")
    chaos.add_argument("--replay-check", action="store_true",
                       help="run the scenario twice and require "
                            "bit-identical outcomes (determinism gate)")
    chaos.add_argument("--snapshot-on-violation", default=None,
                       metavar="PATH",
                       help="checkpoint the failing ring here if any "
                            "invariant is violated")
    chaos.add_argument("--export-plan", default=None, metavar="PATH",
                       help="write the generated fault plan as JSON "
                            "(replayable via run --fault-plan @PATH)")
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="also write the soak summary as JSON")

    explore = commands.add_parser(
        "explore",
        help="exhaustively model-check the protocol state machines "
             "on small configurations",
    )
    explore.add_argument("--smoke", action="store_true",
                         help="small CI sweep (N=3, k=2) instead of the "
                              "full N<=5, k<=3 scenario set")
    explore.add_argument("--max-states", type=int, default=100_000,
                         metavar="N",
                         help="abort if a single exploration exceeds N "
                              "states (default: %(default)s)")
    explore.add_argument("--include-wedge", action="store_true",
                         help="also run the known-deadlock sanity scenario "
                              "and require the detector to flag it")
    explore.add_argument("--symmetry", action="store_true",
                         help="quotient states by the scenario's valid "
                              "ring rotations before membership testing")
    explore.add_argument("--hash-compact", action="store_true",
                         help="store 128-bit digests instead of full "
                              "signatures in the seen-set")
    explore.add_argument("--faults", type=int, default=0, metavar="BUDGET",
                         help="explore fail/kill/repair interleavings with "
                              "at most BUDGET segment failures per path "
                              "(default: 0, healthy network only)")
    explore.add_argument("--scale", action="store_true",
                         help="run the N=8, k=4 scale scenario (symmetry + "
                              "hash compaction forced) instead of the sweep")
    explore.add_argument("--consistency", action="store_true",
                         help="cross-validate the scaling modes: exact vs "
                              "quotiented orbit coverage and exact vs "
                              "digest verdicts on small scenarios")
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def command_run(args: argparse.Namespace) -> int:
    if args.resume_from:
        return _command_resume(args)
    if args.rate <= 0.0:
        print("--rate must be positive")
        return 1
    fault_plan = None
    if args.fault_plan:
        from repro.errors import FaultError
        from repro.faults import parse_spec
        try:
            fault_plan = parse_spec(args.fault_plan, args.nodes, args.lanes,
                                    seed=args.seed)
        except FaultError as exc:
            print(f"bad --fault-plan: {exc}")
            return 1
    max_retries = args.max_retries
    if max_retries is None and fault_plan is not None:
        # A permanently dead source column would otherwise retry forever
        # and the drain below would never terminate.
        max_retries = 8
    from repro.core.config import RetryPolicy
    from repro.errors import ConfigurationError
    try:
        retry = RetryPolicy(max_retries=max_retries).with_overrides(
            **{key: value for key, value in (
                ("delay", args.retry_delay),
                ("backoff", args.retry_backoff),
                ("jitter", args.retry_jitter),
                ("node_budget", args.retry_budget),
            ) if value is not None})
    except ConfigurationError as exc:
        print(f"bad retry policy: {exc}")
        return 1
    if args.topology != "ring":
        return _command_run_hier(args, retry)
    if args.backend == "batch":
        return _command_run_batch(args, retry)
    config = RMBConfig(nodes=args.nodes, lanes=args.lanes,
                       cycle_period=2.0,
                       retry=retry,
                       admission_limit=args.admission_limit,
                       admission_policy=args.admission_policy,
                       check_level=args.check_level,
                       synchronous=not args.asynchronous)
    watchdog = None
    if args.watchdog:
        from repro.supervision import WatchdogConfig
        # The watchdog's storm knobs come from the unified retry policy
        # (the policy defaults mirror the historical WatchdogConfig ones).
        watchdog = WatchdogConfig(retry_threshold=retry.storm_threshold,
                                  retry_storm_action=retry.storm_action)
    recovery = None
    if args.recovery:
        from repro.resilience import RecoveryConfig
        recovery = RecoveryConfig()
    obs = _build_obs(args)
    ring = RMBRing(config, seed=args.seed, probe_period=8.0,
                   fault_plan=fault_plan, watchdog=watchdog,
                   recovery=recovery, obs=obs)
    rng = RandomStream(args.seed, name="cli")
    duration = max(1, int(args.messages / (args.rate * args.nodes)))
    schedule = bernoulli_schedule(
        args.nodes, duration, args.rate, args.flits, rng)
    if len(schedule) == 0:
        print("the requested rate produced no messages; raise --rate "
              "or --messages")
        return 1
    replay_on_ring(ring, schedule)
    mode = "asynchronous" if args.asynchronous else "synchronous"
    title = (f"RMB N={args.nodes} k={args.lanes} ({mode}), "
             f"{len(schedule)} messages @ rate {args.rate}")
    run_until = ring.sim.now + schedule.horizon() + 1
    if args.checkpoint_every is not None:
        from repro.supervision import PeriodicCheckpointer
        # run_until lets a resumed run stop at the same absolute horizon
        # as this one; the title reproduces the report header verbatim.
        PeriodicCheckpointer(
            ring, args.checkpoint_every, args.checkpoint_file,
            meta={"run_until": run_until, "title": title},
        )
    ring.sim.run(until=run_until)
    ring.drain()
    _report_run(ring, title, args.stats_json)
    _export_obs(obs, args)
    return 0


def _command_run_batch(args: argparse.Namespace, retry) -> int:
    """``run --backend batch``: the same workload through repro.batch.

    The batch backend models the synchronous, statically-faulted subset
    of the protocol; flags that need the event kernel's machinery are
    rejected up front with the flag name rather than surfacing as a
    deep :class:`BatchUnsupported`.  ``--check-level`` is accepted but
    moot: the batch backend has no runtime invariant monitor — its
    conformance guarantee is the differential suite in ``tests/batch``
    (results are identical at all monitor levels on the event backend).
    """
    from repro.batch import BatchRing, replay_on_batch
    from repro.batch.engine import BatchUnsupported
    needs_event = [
        ("--asynchronous", args.asynchronous),
        ("--fault-plan", args.fault_plan is not None),
        ("--recovery", args.recovery),
        ("--watchdog", args.watchdog),
        ("--admission-limit", args.admission_limit is not None),
        ("--checkpoint-every", args.checkpoint_every is not None),
        ("--obs-level", args.obs_level != "off"),
        ("--metrics-out", args.metrics_out is not None),
        ("--spans-out", args.spans_out is not None),
    ]
    flagged = [flag for flag, used in needs_event if used]
    if flagged:
        print(f"--backend batch does not support {', '.join(flagged)}; "
              f"use the default event backend")
        return 1
    config = RMBConfig(nodes=args.nodes, lanes=args.lanes,
                       cycle_period=2.0, retry=retry)
    try:
        ring = BatchRing(config, seed=args.seed, probe_period=8.0)
    except BatchUnsupported as exc:
        print(f"--backend batch: {exc}")
        return 1
    rng = RandomStream(args.seed, name="cli")
    duration = max(1, int(args.messages / (args.rate * args.nodes)))
    schedule = bernoulli_schedule(
        args.nodes, duration, args.rate, args.flits, rng)
    if len(schedule) == 0:
        print("the requested rate produced no messages; raise --rate "
              "or --messages")
        return 1
    replay_on_batch(ring, schedule)
    title = (f"RMB N={args.nodes} k={args.lanes} (synchronous, batch), "
             f"{len(schedule)} messages @ rate {args.rate}")
    ring.run(schedule.horizon() + 1)
    ring.drain()
    _report_run(ring, title, args.stats_json)
    return 0


def _command_run_hier(args: argparse.Namespace, retry) -> int:
    """``run --topology hier[:MxN]``: traffic on a hierarchical fabric.

    The headline table is *journey-level* (end to end across bridge
    hops, what a PE actually experiences); a second table breaks the
    delivered legs down per member ring.  The resilience stack does not
    yet compose with fabrics, so those flags are rejected by name.
    """
    from repro.errors import ConfigurationError
    from repro.hier import HierRMB
    from repro.networks.registry import hier_shape
    from repro.traffic import replay_on_fabric
    needs_ring = [
        ("--backend batch", args.backend == "batch"),
        ("--asynchronous", args.asynchronous),
        ("--fault-plan", args.fault_plan is not None),
        ("--recovery", args.recovery),
        ("--watchdog", args.watchdog),
    ]
    flagged = [flag for flag, used in needs_ring if used]
    if flagged:
        print(f"--topology {args.topology} does not support "
              f"{', '.join(flagged)}; use --topology ring")
        return 1
    try:
        locals_count, nodes_per_local = hier_shape(args.topology, args.nodes)
    except ConfigurationError as exc:
        print(f"bad --topology: {exc}")
        return 1
    lanes = max(2, args.lanes)
    template = RMBConfig(nodes=nodes_per_local, lanes=lanes,
                         cycle_period=2.0, retry=retry,
                         admission_limit=args.admission_limit,
                         admission_policy=args.admission_policy,
                         check_level=args.check_level)
    obs = _build_obs(args)
    network = HierRMB(locals=locals_count, nodes_per_local=nodes_per_local,
                      lanes=lanes, seed=args.seed, config=template,
                      probe_period=8.0, obs=obs)
    rng = RandomStream(args.seed, name="cli")
    duration = max(1, int(args.messages / (args.rate * args.nodes)))
    schedule = bernoulli_schedule(
        args.nodes, duration, args.rate, args.flits, rng)
    if len(schedule) == 0:
        print("the requested rate produced no messages; raise --rate "
              "or --messages")
        return 1
    replay_on_fabric(network, schedule)
    title = (f"hier RMB {locals_count}x{nodes_per_local} k={args.lanes}, "
             f"{len(schedule)} messages @ rate {args.rate}")
    run_until = network.sim.now + schedule.horizon() + 1
    if args.checkpoint_every is not None:
        from repro.supervision import PeriodicCheckpointer
        PeriodicCheckpointer(
            network, args.checkpoint_every, args.checkpoint_file,
            meta={"run_until": run_until, "title": title},
        )
    network.sim.run(until=run_until)
    network.drain()
    stats = network.journey_run_stats()
    rows = [{"metric": key, "value": round(value, 3)}
            for key, value in stats.summary().items()]
    print(render_table(rows, title=f"{title} (journey-level)"))
    ring_rows = []
    for name, ring_stats in network.stats_by_ring().items():
        ring_rows.append({
            "ring": name,
            "offered": int(ring_stats.offered),
            "delivered": int(ring_stats.completed),
            "mean_latency": round(ring_stats.latency.mean, 2),
            "nacks": int(ring_stats.nacks),
        })
    print()
    print(render_table(ring_rows, title="per-ring legs"))
    if args.stats_json is not None:
        import json
        payload = dict(stats.summary())
        payload["rings"] = {
            name: ring_stats.summary()
            for name, ring_stats in network.stats_by_ring().items()
        }
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    _export_obs(obs, args)
    return 0


def _build_obs(args: argparse.Namespace):
    """The run's observability bundle, or ``None`` when nothing asked.

    Returning ``None`` (rather than an ``off`` bundle) keeps an
    unobserved run's construction byte-for-byte what it was before the
    observability layer existed.
    """
    level = args.obs_level
    if level == "off" and (args.metrics_out or args.spans_out):
        level = "full"
    if level == "off" and not (args.metrics_out or args.spans_out):
        return None
    from repro.obs import Observability
    return Observability(level)


def _export_obs(obs, args: argparse.Namespace) -> None:
    if obs is None:
        return
    if args.metrics_out:
        obs.write_metrics(args.metrics_out)
    if args.spans_out:
        obs.write_spans(args.spans_out)
    print()
    print(obs.report())


def _command_resume(args: argparse.Namespace) -> int:
    from repro.errors import SnapshotError
    from repro.supervision import resume_run
    try:
        ring, manifest = resume_run(args.resume_from)
    except (OSError, SnapshotError) as exc:
        print(f"cannot resume from {args.resume_from}: {exc}")
        return 1
    meta = manifest.get("meta", {})
    title = meta.get("title", f"resumed from {args.resume_from}")
    _report_run(ring, title, args.stats_json)
    return 0


def _report_run(ring, title: str,
                stats_json: Optional[str]) -> None:
    # ``ring`` is an RMBRing or a BatchRing; the batch backend has no
    # fault driver / recovery manager / watchdog, so those sections are
    # attribute-guarded.
    stats = ring.stats()
    rows = [{"metric": key, "value": round(value, 3)}
            for key, value in stats.summary().items()]
    print(render_table(rows, title=title))
    faults = getattr(ring, "faults", None)
    if faults is not None:
        print("\nfault plan:")
        print(faults.plan.describe())
        fault_rows = [{"metric": key, "value": value}
                      for key, value in faults.stats.summary().items()]
        fault_rows.append({"metric": "evacuation_moves",
                           "value": ring.compaction.stats.evacuations})
        fault_rows.append({"metric": "min_windowed_throughput",
                           "value": round(stats.min_windowed_throughput(), 3)})
        print(render_table(fault_rows, title="degraded-mode accounting"))
    recovery = getattr(ring, "recovery", None)  # absent in old snapshots
    if recovery is not None:
        recovery_rows = [{"metric": key, "value": value}
                         for key, value in recovery.stats.summary().items()]
        recovery_rows.append({"metric": "open_breakers",
                              "value": recovery.open_breakers()})
        print(render_table(recovery_rows, title="recovery actions"))
    watchdog = getattr(ring, "watchdog", None)
    if watchdog is not None and len(watchdog.incidents):
        print("\nwatchdog incidents:")
        print(watchdog.incidents.render())
    if stats_json is not None:
        import json
        with open(stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def command_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import SoakConfig, parse_chaos_spec, run_soak
    from repro.errors import ConfigurationError, FaultError
    from repro.resilience import RecoveryConfig
    try:
        soak = SoakConfig(
            nodes=args.nodes,
            lanes=args.lanes,
            ticks=args.ticks,
            rate=args.rate,
            data_flits=args.flits,
            seed=args.seed,
            spec=args.spec,
            recovery=None if args.no_recovery else RecoveryConfig(),
            asynchronous=args.asynchronous,
            monitor_period=args.monitor_period,
        )
        plan = parse_chaos_spec(args.spec, args.nodes, args.lanes,
                                seed=args.seed)
    except (ConfigurationError, FaultError) as exc:
        print(f"bad chaos scenario: {exc}")
        return 1
    if args.export_plan:
        with open(args.export_plan, "w", encoding="utf-8") as handle:
            handle.write(plan.to_json())
            handle.write("\n")
        print(f"fault plan ({len(plan)} events) -> {args.export_plan}")
    result = run_soak(soak, healthy_baseline=not args.no_baseline,
                      snapshot_path=args.snapshot_on_violation)
    print(result.report())
    failed = bool(result.violations) or result.pending != 0
    if args.replay_check:
        again = run_soak(soak, healthy_baseline=False)
        if again.signature == result.signature:
            print(f"replay determinism: OK "
                  f"(signature {result.signature[:16]}…)")
        else:
            print(f"replay determinism FAILED: {result.signature[:16]}… "
                  f"vs {again.signature[:16]}…")
            failed = True
    if args.json:
        import json
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if failed:
        print("\nchaos soak FAILED")
        return 1
    return 0


def command_race(args: argparse.Namespace) -> int:
    rng = RandomStream(args.seed, name="cli")
    perm = generate(args.family, args.nodes, rng)
    batch_pairs = permutation_pairs(perm)
    rows = []
    for name in PAPER_NETWORKS + EXTRA_NETWORKS:
        network = build_network(name, args.nodes, args.lanes,
                                seed=args.seed)
        result = network.route_batch(
            make_batch(batch_pairs, data_flits=args.flits),
            max_ticks=2_000_000,
        )
        rows.append(result.row())
    print(render_comparison(
        f"{args.family} permutation, N={args.nodes}, k={args.lanes}",
        rows, baseline_key="rmb", value_key="makespan",
    ))
    return 0


def command_arena(args: argparse.Namespace) -> int:
    from repro.arena import run_arena
    from repro.errors import ReproError
    patterns = [spec.strip() for spec in args.patterns.split(",")
                if spec.strip()]
    networks = [name.strip() for name in args.networks.split(",")
                if name.strip()]
    try:
        report = run_arena(
            args.nodes, args.lanes, patterns, networks=networks,
            data_flits=args.flits, seed=args.seed, rounds=args.rounds,
            max_ticks=args.max_ticks)
    except ReproError as exc:
        print(f"bad arena: {exc}")
        return 1
    print(report.render())
    if args.json:
        import json
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def command_saturate(args: argparse.Namespace) -> int:
    from repro.errors import FaultError, ReproError
    from repro.traffic import SaturationConfig, make_pattern, \
        saturation_search
    fault_plan = None
    if args.fault_plan:
        from repro.faults import parse_spec
        try:
            fault_plan = parse_spec(args.fault_plan, args.nodes,
                                    args.lanes, seed=args.seed)
        except FaultError as exc:
            print(f"bad --fault-plan: {exc}")
            return 1
    recovery = None
    if args.recovery:
        from repro.resilience import RecoveryConfig
        recovery = RecoveryConfig()
    cfg = SaturationConfig(
        nodes=args.nodes, lanes=args.lanes, data_flits=args.flits,
        seed=args.seed, duration=args.duration, backend=args.backend,
        arrival=args.arrival, topology=args.topology,
        iterations=args.iterations,
        rate_floor=args.rate_floor, rate_ceiling=args.rate_ceiling,
        fault_plan=fault_plan, admission_limit=args.admission_limit,
        admission_policy=args.admission_policy, recovery=recovery)
    try:
        pattern = make_pattern(args.pattern, args.nodes, k=args.lanes,
                               seed=args.seed)
        curve = saturation_search(cfg, pattern)
    except ReproError as exc:
        print(f"saturation sweep failed: {exc}")
        return 1
    rows = [dict(row, rate=f"{row['rate']:.5f}") for row in curve.rows()]
    print(render_table(
        rows,
        columns=["rate", "offered", "delivered", "completion",
                 "mean_latency", "p95_latency", "throughput", "stable"],
        title=(f"{pattern.describe()} via {args.arrival} arrivals, "
               f"N={args.nodes} k={args.lanes}, "
               f"backend={args.backend}"
               + (f", topology={args.topology}"
                  if args.topology != "ring" else "")),
    ))
    peak = curve.saturation_point()
    if peak is not None and peak.ring_rates is not None:
        parts = ", ".join(f"{name}={rate:.4f}"
                          for name, rate in peak.ring_rates.items())
        print(f"\nper-ring delivered legs/tick at the saturation point: "
              f"{parts}")
    if curve.unstable_rate is None:
        print(f"\nstable through the whole bracket; saturation >= "
              f"{curve.saturation_rate:.5f} msgs/node/tick")
    elif curve.saturation_rate == 0.0:
        print(f"\nunstable at the rate floor "
              f"{curve.unstable_rate:.5f} msgs/node/tick")
    else:
        print(f"\nsaturation rate: {curve.saturation_rate:.5f} "
              f"msgs/node/tick (unstable at {curve.unstable_rate:.5f})")
    if args.json:
        import json
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(curve.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def command_cost(args: argparse.Namespace) -> int:
    rows = [row.as_dict() for row in cost_table(args.nodes, args.lanes)]
    print(render_table(
        rows,
        title=(f"Section 3.2 hardware cost, N={args.nodes}, "
               f"k={args.lanes}"),
    ))
    return 0


def command_trace(args: argparse.Namespace) -> int:
    config = RMBConfig(nodes=args.nodes, lanes=args.lanes, cycle_period=2.0)
    ring = RMBRing(config, seed=args.seed)
    rng = RandomStream(args.seed, name="cli")
    for index in range(args.nodes // 2):
        source = rng.randint(0, args.nodes - 1)
        destination = (source + rng.randint(2, args.nodes - 2)) % args.nodes
        delay = index * args.step
        message = Message(index, source, destination, data_flits=80,
                          created_at=delay)
        ring.sim.schedule_at(delay, _submitter(ring, message))
    for _ in range(args.frames):
        print(f"--- t = {ring.sim.now:6.1f}  cycle = {ring.cycle_count()}")
        print(render_grid(ring.grid))
        print()
        ring.run(args.step)
    ring.drain()
    print(f"drained: {ring.stats().completed} messages, "
          f"{ring.compaction.stats.moves} compaction moves")
    return 0


def _submitter(ring: RMBRing, message: Message):
    def submit() -> None:
        ring.submit(message)

    return submit


def command_selfcheck(args: argparse.Namespace) -> int:
    from repro.core.selfcheck import run_selfcheck

    results = run_selfcheck()
    rows = [{"check": result.name,
             "status": "PASS" if result.passed else "FAIL",
             "detail": result.detail}
            for result in results]
    print(render_table(rows, title="repro selfcheck"))
    failed = sum(1 for result in results if not result.passed)
    if failed:
        print(f"\n{failed} check(s) FAILED")
        return 1
    print(f"\nall {len(results)} checks passed")
    return 0


def command_explore(args: argparse.Namespace) -> int:
    from repro.protocol.explore import (
        ExploreOptions,
        deadlock_scenario,
        explore_all,
        explore_lifecycle,
        smoke_scenarios,
    )

    if args.scale:
        return _explore_scale(args)
    if args.consistency:
        return _explore_consistency(args)

    options = ExploreOptions(symmetry=args.symmetry,
                             hash_compact=args.hash_compact,
                             fault_budget=args.faults)
    handshake_nodes = (2, 3) if args.smoke else (2, 3, 4, 5)
    scenarios = smoke_scenarios() if args.smoke else None
    sweep = explore_all(handshake_nodes=handshake_nodes,
                        scenarios=scenarios, max_states=args.max_states,
                        options=options)
    for line in sweep.lines():
        print(line)
    print(f"total: {sweep.total_states} states explored")
    failed = not sweep.ok
    if args.include_wedge:
        wedge = deadlock_scenario()
        report = explore_lifecycle(wedge.config(), wedge.messages(),
                                   label=wedge.label,
                                   max_states=args.max_states,
                                   options=options)
        if report.deadlocks and not report.violations:
            print(f"wedge sanity: {wedge.label} correctly flagged as "
                  f"deadlocked ({report.states} states)")
        else:
            print(f"wedge sanity FAILED: {wedge.label} deadlock not "
                  f"detected ({len(report.deadlocks)} deadlocks, "
                  f"{len(report.violations)} violations)")
            failed = True
    if failed:
        print("\nmodel checking FAILED")
        return 1
    print("all properties hold on every reachable state")
    return 0


def _explore_scale(args: argparse.Namespace) -> int:
    """The E31 scale run: quotiented + compacted N=8, k=4 exploration."""
    import time

    from repro.protocol.explore import (
        ExploreOptions,
        explore_lifecycle,
        scale_scenario,
    )

    scenario = scale_scenario()
    options = ExploreOptions(symmetry=True, hash_compact=True,
                             fault_budget=args.faults)
    max_states = max(args.max_states, 600_000)
    start = time.perf_counter()
    report = explore_lifecycle(scenario.config(), scenario.messages(),
                               label=scenario.label, max_states=max_states,
                               options=options)
    elapsed = time.perf_counter() - start
    status = "ok" if report.ok else (
        f"{len(report.violations)} violations, "
        f"{len(report.deadlocks)} deadlocks")
    print(f"scale {scenario.label}: {report.states} canonical states, "
          f"{report.edges} edges, {report.completed_runs} quiescent "
          f"(sym x{report.group_order}, {report.mode}) "
          f"in {elapsed:.1f}s [{status}]")
    if not report.ok:
        print("\nscale exploration FAILED")
        return 1
    print("all properties hold on every reachable canonical state")
    return 0


def _explore_consistency(args: argparse.Namespace) -> int:
    """Cross-validate the scaling modes against the exact explorer.

    Two checks per small scenario: (a) every orbit of the exact
    reachable set appears in the quotiented run's seen-set, and (b)
    digest mode reproduces the exact-set run's counts and verdicts.
    """
    from repro.protocol.explore import (
        ExploreOptions,
        Scenario,
        _canonical_signature,
        _prepare_group,
        explore_lifecycle,
        symmetry_group,
    )

    scenarios = [
        Scenario("2x1-pair", 2, 1, ((0, 1), (1, 0))),
        Scenario("3x2-ring", 3, 2, ((0, 1), (1, 2), (2, 0))),
        Scenario("4x2-ring", 4, 2, ((0, 1), (1, 2), (2, 3), (3, 0))),
    ]
    failed = False
    for scenario in scenarios:
        config = scenario.config()
        messages = scenario.messages()
        group = _prepare_group(symmetry_group(config, messages))
        exact = explore_lifecycle(
            config, messages, label=scenario.label,
            max_states=args.max_states,
            options=ExploreOptions(keep_state_keys=True))
        orbits = {_canonical_signature(key, config.nodes, group)
                  for key in exact.state_keys}
        quotient = explore_lifecycle(
            config, messages, label=scenario.label,
            max_states=args.max_states,
            options=ExploreOptions(symmetry=True, keep_state_keys=True))
        covered = orbits <= set(quotient.state_keys)
        hashed = explore_lifecycle(
            config, messages, label=scenario.label,
            max_states=args.max_states,
            options=ExploreOptions(hash_compact=True))
        digests_agree = (
            (hashed.states, hashed.edges, hashed.completed_runs, hashed.ok)
            == (exact.states, exact.edges, exact.completed_runs, exact.ok))
        verdict = "ok" if covered and digests_agree else "MISMATCH"
        print(f"consistency {scenario.label}: exact={exact.states} "
              f"orbits={len(orbits)} quotient={quotient.states} "
              f"(sym x{quotient.group_order}) covered={covered} "
              f"digests={digests_agree} [{verdict}]")
        failed = failed or verdict != "ok"
    if failed:
        print("\nconsistency check FAILED")
        return 1
    print("scaling modes agree with the exact explorer")
    return 0


COMMANDS = {
    "run": command_run,
    "chaos": command_chaos,
    "race": command_race,
    "arena": command_arena,
    "saturate": command_saturate,
    "cost": command_cost,
    "trace": command_trace,
    "selfcheck": command_selfcheck,
    "explore": command_explore,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Bounded model checking of the RMB protocol state machines.

The transition tables in :mod:`repro.protocol.lifecycle` and
:mod:`repro.protocol.handshake` make the protocol's legal moves
*enumerable*, so on small configurations we can do better than sampling
behaviour by simulation: exhaustively enumerate every reachable joint
state and machine-check the paper's correctness claims on each one.

Two explorers live here:

:func:`explore_handshake`
    Pure breadth-first search over the odd/even compaction handshake
    (paper Section 2.5, rules 1-5).  Joint state = one
    ``(phase, cycle)`` pair per INC; each step lets one INC observe its
    neighbours and apply :func:`repro.protocol.handshake.handshake_step`.
    Checked on every reachable state:

    * the Gray-code invariant — the ``(OD, OC)`` bits always equal
      ``BITS_OF_PHASE[phase]`` (Figure 10's encoding);
    * **Lemma 1** — neighbouring INCs' cycle counts differ by at most 1;
    * progress — some INC always has an enabled rule (the handshake
      itself can never wedge the ring).

:func:`explore_lifecycle`
    Breadth-first search over the *real* routing and compaction engines
    driven in a sealed mini-harness: time pinned to zero, retry timers
    captured in a bag instead of a simulator queue, no RNG, no tracing.
    The nondeterminism explored is scheduling — from each state we fork
    the world and try every enabled action: one flit tick, one
    synchronous compaction pass, firing any pending retry timer, or
    (with a fault budget) failing / killing / repairing one segment
    through the same :mod:`repro.faults.transitions` the production
    fault layer uses.  Checked on every reachable state:

    * **Table 1 legality** — every occupied status register holds a
      legal code and no input port drives two outputs
      (:func:`repro.core.ports.validate_ports`);
    * structural soundness — grid/bus agreement, connected ±1 bus
      shapes (:mod:`repro.core.invariants`);
    * **Theorem 1, make-before-break** — across every compaction pass,
      established buses stay complete and their per-hop lanes never
      rise, except where a hop sat on a DYING/DEAD segment before the
      pass (upward *evacuation* is the fault layer's legal escape);
    * **deadlock freedom** — every state with pending work can reach
      either quiescence (``pending() == 0``) or a state holding a retry
      timer *using protocol moves alone* (fault moves are adversarial
      environment steps, so liveness may not depend on them).

Three scaling devices (:class:`ExploreOptions`) push the frontier past
the original N<=5 / k<=3 sweep:

* **ring-rotation symmetry quotienting** (``symmetry=True``) — each
  state is canonicalised by minimising its signature over the scenario's
  valid ring rotations (with message ids relabelled structurally), so
  whole orbits collapse to one stored key.  The engine's intra-tick
  serialisation (admission scans nodes in ascending absolute index) is
  *not* rotation-covariant, so the explorer does not assume
  equivariance: every stored state is re-expanded under each group
  element by concretely rotating the world (``_World.rotate``).  The
  quotient therefore covers the closure of the reachable set under
  rotated serialisations — a superset of the exact run's behaviours, in
  which every state is a real protocol state reachable under *some*
  serialisation of the same simultaneous hardware events.  Safety
  verdicts are sound (and strictly stronger than exact mode's);
  deadlock freedom is checked at orbit granularity, so fault-liveness
  tests and CI keep exact mode for that property.  The handshake
  explorer's per-INC step relation *is* fully equivariant, and it
  additionally quotients by ring reflection, which its
  left/right-symmetric guards admit; the lifecycle ring is
  unidirectional, so only rotations apply there.
* **hash compaction** (``hash_compact=True``) — the seen-set stores
  128-bit BLAKE2b digests of canonical signatures instead of the
  signatures themselves (~16 bytes/state).  A digest collision could
  silently merge two distinct states (never invent a violation, only
  mask one); at 10^6 states the collision probability is ~1.5e-27, and
  the exact mode plus the differential test in
  ``tests/protocol/test_explore_modes.py`` guard the scheme.
* **fault moves** (``fault_budget >= 1``) — ``fail``/``kill``/``repair``
  actions drive segments through OK -> DYING -> DEAD -> OK exactly as
  :class:`repro.faults.inject.FaultManager` would, bounded by a budget
  on ``fail`` moves so the space stays finite.

Any violating path is captured as a :class:`Counterexample` — a
deterministic action script replayable through the real engines with
:func:`replay_counterexample`, so every checker finding is a runnable
regression test.

Exploration is bounded by construction — small ``N``, ``k``, message
count, ``data_flits``, ``max_retries`` and ``header_timeout`` keep the
signature space finite — and additionally by ``max_states`` as a
safety net.  :func:`explore_all` runs the default sweep used by
experiment E30 and the CI smoke job; E31 measures the scaling modes.
"""

from __future__ import annotations

import copy
import hashlib
import io
import pickle
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.compaction import CompactionEngine
from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.core.invariants import check_bus_shapes, check_grid_bus_agreement
from repro.core.ports import validate_ports
from repro.core.routing import RoutingEngine
from repro.core.segments import SegmentGrid
from repro.core.status import PortHealth
from repro.core.virtual_bus import BusPhase, VirtualBus
from repro.errors import InvariantViolation, ProtocolError
from repro.faults.transitions import fail_target, kill_target, repair_target
from repro.protocol.handshake import (
    BITS_OF_PHASE,
    HandshakePhase,
    HandshakeState,
    NeighbourBits,
    handshake_step,
)

__all__ = [
    "Counterexample",
    "ExplorationError",
    "ExploreOptions",
    "HandshakeReport",
    "LifecycleReport",
    "ReplayResult",
    "Scenario",
    "SweepReport",
    "default_scenarios",
    "deadlock_scenario",
    "explore_all",
    "explore_handshake",
    "explore_lifecycle",
    "exploration_config",
    "fault_scenarios",
    "replay_counterexample",
    "run_script",
    "scale_scenario",
    "symmetry_group",
]

#: Phases during which a virtual bus is *established* in the sense of
#: Theorem 1: the circuit has been acknowledged and data may flow, so
#: compaction must move it without ever breaking it.
_ESTABLISHED_PHASES = frozenset(
    {BusPhase.ACK_RETURN, BusPhase.STREAMING, BusPhase.DRAINING}
)

#: One explorer move.  Concrete shapes: ``("tick",)``, ``("compact",)``,
#: ``("timer", message_id)``, ``("fail", segment, lane)``,
#: ``("kill", segment, lane)``, ``("repair", segment, lane)``, plus the
#: replay-only pseudo-action ``("rotate", rotation)`` emitted into
#: symmetry-mode counterexample scripts (it rotates the whole world, it
#: is never an explored protocol move).
Action = Tuple[object, ...]

#: A state signature (or its 128-bit digest in hash-compaction mode).
StateKey = object

#: The sabotage hooks recognised by :class:`ExploreOptions` (test-only).
SABOTAGE_MODES = frozenset({"lift-established-hop", "drop-retry-timer"})

_FAULT_KINDS = frozenset({"fail", "kill", "repair"})


class ExplorationError(RuntimeError):
    """The state space exceeded the configured ``max_states`` bound."""


@dataclass(frozen=True)
class ExploreOptions:
    """Knobs for the lifecycle explorer's scaling and fault modes.

    The defaults reproduce the original exact explorer bit-for-bit:
    no quotienting, full signatures in the seen-set, no fault moves.

    Attributes:
        symmetry: canonicalise states over the scenario's valid ring
            rotations before membership testing, re-expanding each
            stored state under every group element (see the module
            docstring for the serialisation-closure semantics).  When
            no non-trivial rotation maps the message multiset onto
            itself the group is just the identity and nothing changes.
        hash_compact: store 128-bit digests in the seen-set instead of
            full canonical signatures.
        fault_budget: maximum number of ``fail`` moves along any path
            (0 disables fault exploration entirely).
        fault_targets: restrict fault moves to these ``(segment, lane)``
            pairs; ``None`` means every segment.  A restriction also
            filters the symmetry group to rotations preserving the set.
        sabotage: test-only protocol corruption, used to prove the
            checker and the counterexample replayer have teeth.  One of
            ``"lift-established-hop"`` (compaction illegally raises an
            established hop — a Theorem 1 violation) or
            ``"drop-retry-timer"`` (the ``retry -> queued`` lifecycle
            arc is severed: fired timers are dropped, wedging the
            message — a deadlock).  Incompatible with ``symmetry``,
            which the corruption does not respect.
        keep_state_keys: retain every stored state key on the report
            (``LifecycleReport.state_keys``).  In the default
            exact/unquotiented mode the keys are the raw signatures,
            which is what the symmetry-consistency tests canonicalise
            to count true orbits.
    """

    symmetry: bool = False
    hash_compact: bool = False
    fault_budget: int = 0
    fault_targets: Optional[Tuple[Tuple[int, int], ...]] = None
    sabotage: Optional[str] = None
    keep_state_keys: bool = False

    def validate(self, config: RMBConfig) -> None:
        """Reject inconsistent combinations before exploration starts."""
        if self.fault_budget < 0:
            raise ProtocolError("fault_budget must be >= 0")
        if self.sabotage is not None and self.sabotage not in SABOTAGE_MODES:
            raise ProtocolError(
                f"unknown sabotage mode {self.sabotage!r}; "
                f"expected one of {sorted(SABOTAGE_MODES)}"
            )
        if self.sabotage is not None and self.symmetry:
            raise ProtocolError(
                "sabotage corrupts one concrete bus/timer and so breaks "
                "rotation equivariance; disable symmetry to use it"
            )
        if self.fault_targets is not None:
            for segment, lane in self.fault_targets:
                if not (0 <= segment < config.nodes
                        and 0 <= lane < config.lanes):
                    raise ProtocolError(
                        f"fault target ({segment}, {lane}) outside the "
                        f"{config.nodes}x{config.lanes} grid"
                    )


# ---------------------------------------------------------------------------
# Handshake explorer
# ---------------------------------------------------------------------------

#: Joint handshake state: per-INC ``(phase, cycle - min(cycles))``.
_HandshakeJoint = Tuple[Tuple[HandshakePhase, int], ...]


@dataclass
class HandshakeReport:
    """Result of one exhaustive handshake exploration."""

    nodes: int
    states: int = 0
    edges: int = 0
    max_skew: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _handshake_sort_key(
    cells: _HandshakeJoint,
) -> Tuple[Tuple[str, int], ...]:
    return tuple((phase.value, cycle) for phase, cycle in cells)


def _canonical_handshake(
    cells: Sequence[Tuple[HandshakePhase, int]], symmetry: bool = False
) -> _HandshakeJoint:
    """Canonical form of a joint handshake state.

    Always normalises cycle counters to the ring minimum.  With
    ``symmetry`` the representative is additionally minimised over all
    ring rotations *and* the ring reflection — the handshake guards
    constrain both neighbours identically (:func:`guard_satisfied`
    checks ``left == required == right``), so its dynamics commute with
    the full dihedral group, not just rotations.
    """
    floor = min(cycle for _, cycle in cells)
    base = tuple((phase, cycle - floor) for phase, cycle in cells)
    if not symmetry:
        return base
    count = len(base)
    best = base
    best_key = _handshake_sort_key(base)
    for reflect in (False, True):
        oriented = (
            base if not reflect
            else tuple(base[(-i) % count] for i in range(count))
        )
        for rotation in range(count):
            candidate = tuple(
                oriented[(i - rotation) % count] for i in range(count)
            )
            floor = min(cycle for _, cycle in candidate)
            candidate = tuple(
                (phase, cycle - floor) for phase, cycle in candidate
            )
            key = _handshake_sort_key(candidate)
            if key < best_key:
                best, best_key = candidate, key
    return best


def explore_handshake(
    nodes: int, max_states: int = 100_000, symmetry: bool = False
) -> HandshakeReport:
    """Enumerate every reachable joint state of ``nodes`` handshaking INCs.

    Each INC runs rules 1-5 off its own clock; a step is one INC taking
    one clock edge.  Cycle counters are canonicalised relative to the
    ring minimum, so the reachable set is finite exactly when Lemma 1
    holds (skew stays bounded); a Lemma 1 violation is reported and the
    offending branch is not expanded further.  With ``symmetry`` the
    search also quotients by ring rotation and reflection (the
    handshake's full symmetry group), exploring one representative per
    orbit.
    """
    if nodes < 2:
        raise ProtocolError(
            f"handshake exploration needs >= 2 INCs, got {nodes}"
        )
    report = HandshakeReport(nodes=nodes)
    initial = _canonical_handshake(
        [(HandshakePhase.WORK, 0)] * nodes, symmetry
    )
    seen = {initial}
    frontier: deque[_HandshakeJoint] = deque([initial])
    while frontier:
        joint = frontier.popleft()
        report.states += 1
        stepped = 0
        for index in range(nodes):
            phase, cycle = joint[index]
            od, oc = BITS_OF_PHASE[phase]
            left_phase = joint[(index - 1) % nodes][0]
            right_phase = joint[(index + 1) % nodes][0]
            after, rule = handshake_step(
                HandshakeState(phase, od, oc),
                NeighbourBits(*BITS_OF_PHASE[left_phase]),
                NeighbourBits(*BITS_OF_PHASE[right_phase]),
            )
            if rule is None:
                continue  # guard not satisfied: this INC waits
            stepped += 1
            if (after.od, after.oc) != BITS_OF_PHASE[after.phase]:
                report.violations.append(
                    f"N={nodes} inc{index}: bits {(after.od, after.oc)} "
                    f"disagree with Gray code for phase {after.phase.value}"
                )
                continue
            cells = list(joint)
            cells[index] = (
                after.phase, cycle + (1 if rule.advances_cycle else 0)
            )
            skew = _max_neighbour_skew(cells)
            report.max_skew = max(report.max_skew, skew)
            if skew > 1:
                report.violations.append(
                    f"N={nodes} inc{index} rule {rule.rule}: neighbour "
                    f"cycle skew {skew} > 1 (Lemma 1)"
                )
                continue  # do not expand past a violation
            child = _canonical_handshake(cells, symmetry)
            report.edges += 1
            if child not in seen:
                seen.add(child)
                frontier.append(child)
                if len(seen) > max_states:
                    raise ExplorationError(
                        f"handshake N={nodes}: > {max_states} states"
                    )
        if stepped == 0:
            report.violations.append(
                f"N={nodes}: no INC has an enabled rule in {joint!r} "
                "(handshake wedge)"
            )
    return report


def _max_neighbour_skew(cells: Sequence[Tuple[HandshakePhase, int]]) -> int:
    count = len(cells)
    return max(
        abs(cells[i][1] - cells[(i + 1) % count][1]) for i in range(count)
    )


# ---------------------------------------------------------------------------
# Lifecycle explorer: world harness
# ---------------------------------------------------------------------------

def _zero_time() -> float:
    """Pinned clock: exploration is untimed, timers fire nondeterministically."""
    return 0.0


def exploration_config(nodes: int, lanes: int, **overrides: object) -> RMBConfig:
    """An :class:`RMBConfig` for exploration, allowing small/odd ``nodes``.

    :class:`RMBConfig` validation requires even ``N >= 4`` because the
    odd/even *handshake* needs consistent parity around the ring.  The
    lifecycle explorer runs synchronous compaction (no handshake), where
    any ``N >= 2`` is meaningful — so we validate against a legal node
    count and then patch the real one in.
    """
    legal_nodes = nodes if nodes >= 4 and nodes % 2 == 0 else 4
    defaults: Dict[str, object] = {
        "synchronous": True,
        "retry_jitter": 0.0,
        "check_level": "off",
    }
    defaults.update(overrides)
    config = RMBConfig(nodes=legal_nodes, lanes=lanes, **defaults)  # type: ignore[arg-type]
    if legal_nodes != nodes:
        if nodes < 2:
            raise ProtocolError(f"exploration needs >= 2 nodes, got {nodes}")
        config = copy.copy(config)
        object.__setattr__(config, "nodes", nodes)
    return config


class _TimerBag:
    """Captures retry-timer callbacks instead of scheduling them.

    The explorer fires captured callbacks nondeterministically, which
    over-approximates every possible timer/tick interleaving — delays
    and jitter become irrelevant, which is exactly right for a model
    checker (the properties must hold for *any* timing).
    """

    def __init__(self) -> None:
        self.callbacks: List[object] = []

    def schedule(self, delay: float, callback: object) -> None:
        self.callbacks.append(callback)

    def message_ids(self) -> List[int]:
        return sorted(
            callback._message.message_id  # type: ignore[attr-defined]
            for callback in self.callbacks
        )

    def _take(self, message_id: int) -> Callable[[], None]:
        for index, callback in enumerate(self.callbacks):
            if callback._message.message_id == message_id:  # type: ignore[attr-defined]
                self.callbacks.pop(index)
                return callback  # type: ignore[return-value]
        raise ProtocolError(f"no pending timer for msg{message_id}")

    def fire(self, message_id: int) -> None:
        self._take(message_id)()

    def drop(self, message_id: int) -> None:
        """Discard a pending timer without firing it (sabotage only)."""
        self._take(message_id)


class _World:
    """One sealed protocol universe: grid + engines + captured timers."""

    def __init__(
        self,
        config: RMBConfig,
        messages: Sequence[Message],
        options: Optional[ExploreOptions] = None,
    ) -> None:
        self.config = config
        self.options = options or ExploreOptions()
        self.messages = tuple(messages)
        self.grid = SegmentGrid(config.nodes, config.lanes)
        self.buses: Dict[int, VirtualBus] = {}
        self.timers = _TimerBag()
        self.engine = RoutingEngine(
            config, self.grid, self.buses,
            now=_zero_time, schedule=self.timers.schedule, rng=None,
        )
        self.compaction = CompactionEngine(config, self.grid, self.buses)
        # Reference scan: exploration states must not depend on the
        # incremental dirty-set (which the signature ignores).
        self.compaction.incremental = False
        self.cycle = 0
        self.fails_used = 0
        for message in messages:
            self.engine.submit(message)

    # -- actions ---------------------------------------------------------
    def _fault_moves(self) -> List[Action]:
        options = self.options
        if options.fault_budget <= 0:
            return []
        if options.fault_targets is not None:
            targets: Iterable[Tuple[int, int]] = options.fault_targets
        else:
            targets = (
                (segment, lane)
                for segment in range(self.config.nodes)
                for lane in range(self.config.lanes)
            )
        moves: List[Action] = []
        for segment, lane in targets:
            health = self.grid.health(segment, lane)
            if health is PortHealth.OK:
                if self.fails_used < options.fault_budget:
                    moves.append(("fail", segment, lane))
            else:
                if health is PortHealth.DYING:
                    moves.append(("kill", segment, lane))
                moves.append(("repair", segment, lane))
        return moves

    def actions(self) -> List[Action]:
        if self.engine.pending() == 0 and not self.timers.callbacks:
            return []  # quiescent: absorbing state, even mid-fault
        enabled: List[Action] = [("tick",), ("compact",)]
        enabled.extend(("timer", mid) for mid in self.timers.message_ids())
        enabled.extend(self._fault_moves())
        return enabled

    def apply(self, action: Action) -> Optional[str]:
        """Execute one action; returns a violation description or ``None``."""
        kind = action[0]
        if kind == "tick":
            self.engine.flit_tick()
            return None
        if kind == "timer":
            message_id = int(action[1])  # type: ignore[arg-type]
            if self.options.sabotage == "drop-retry-timer":
                # Severed (retry, retry_timer) -> queued arc: the timer
                # evaporates and the message waits forever.
                self.timers.drop(message_id)
                return None
            self.timers.fire(message_id)
            return None
        if kind in _FAULT_KINDS:
            segment = int(action[1])  # type: ignore[arg-type]
            lane = int(action[2])  # type: ignore[arg-type]
            if kind == "fail":
                if fail_target(self.grid, segment, lane):
                    self.fails_used += 1
            elif kind == "kill":
                kill_target(self.grid, self.engine, segment, lane)
            else:
                repair_target(self.grid, segment, lane)
            return None
        if kind == "rotate":
            self.rotate(int(action[1]))  # type: ignore[arg-type]
            return None
        # Compaction pass: snapshot established buses (and the pre-pass
        # health under each hop) for Theorem 1.
        before = {
            bus.bus_id: (
                list(bus.hops),
                [
                    self.grid.health(bus.segment_index(hop), bus.hops[hop])
                    for hop in range(len(bus.hops))
                ],
            )
            for bus in self.buses.values()
            if bus.phase in _ESTABLISHED_PHASES
        }
        self.compaction.global_pass(self.cycle)
        self.cycle += 1
        if self.options.sabotage == "lift-established-hop":
            self._sabotage_lift()
        for bus_id, (hops, healths) in before.items():
            bus = self.buses.get(bus_id)
            if bus is None or not bus.complete or len(bus.hops) != len(hops):
                return (
                    f"theorem1: established bus {bus_id} broken by "
                    f"compaction ({'gone' if bus is None else bus.describe()})"
                )
            for hop, old_lane in enumerate(hops):
                if bus.hops[hop] > old_lane and healths[hop] is PortHealth.OK:
                    # Upward moves are legal only as evacuation off a
                    # non-OK segment; from a healthy one they break the
                    # downward-only guarantee.
                    return (
                        f"theorem1: {bus.describe()} hop {hop} rose "
                        f"{old_lane} -> {bus.hops[hop]} during compaction"
                    )
        return None

    def _sabotage_lift(self) -> None:
        """Test-only corruption: raise one established hop off a healthy
        segment, exactly the move Theorem 1 forbids."""
        for bus in self.buses.values():
            if bus.phase not in _ESTABLISHED_PHASES:
                continue
            for hop in bus.held_hops():
                lane = bus.hops[hop]
                segment = bus.segment_index(hop)
                if (lane + 1 < self.config.lanes
                        and self.grid.is_usable(segment, lane + 1)):
                    self.grid.move_up(segment, lane, bus.bus_id)
                    bus.hops[hop] = lane + 1
                    return

    # -- symmetry --------------------------------------------------------
    def rotate(self, rotation: int) -> None:
        """Rotate the whole world ``rotation`` ring positions in place.

        The concrete realisation of one symmetry-group element: node
        ``i`` moves to ``(i + rotation) % N`` and message ``m`` is
        relabelled to ``pi[m]`` (the structural bijection from
        :func:`_rotation_relabelling`).  Afterwards
        ``raw_signature()`` equals ``_transform_signature`` of the old
        signature — the surgery and the symbolic transform are two views
        of the same group action, and the tests assert they agree.

        On an even ring the compaction cycle counter also advances by
        ``rotation`` so the D2 alternation pattern follows the rotated
        segments; on an odd ring it must stay put (the only
        parity-to-parity map that composes with Z_N there is the
        identity), which merely makes the orbits smaller.
        """
        nodes = self.config.nodes
        rotation %= nodes
        if rotation == 0:
            return
        relabelling = _rotation_relabelling(self.messages, nodes, rotation)
        if relabelling is None:
            raise ProtocolError(
                f"rotation {rotation} is not a symmetry of this scenario"
            )
        by_id = {message.message_id: message for message in self.messages}
        replace = {
            message.message_id: by_id[relabelling[message.message_id]]
            for message in self.messages
        }

        def turn(segment: int) -> int:
            return (segment + rotation) % nodes

        # Grid: occupancy and health rows move with their segments.
        grid = self.grid
        grid._occupant = [grid._occupant[(s - rotation) % nodes]
                          for s in range(nodes)]
        grid._health = [grid._health[(s - rotation) % nodes]
                        for s in range(nodes)]
        grid._occupied_index = {
            (turn(segment), lane): bus_id
            for (segment, lane), bus_id in sorted(grid._occupied_index.items())
        }
        grid._faulty_index = {
            (turn(segment), lane): health
            for (segment, lane), health in sorted(grid._faulty_index.items())
        }
        grid._dirty = {turn(segment) for segment in grid._dirty}

        # Engine: node-indexed vectors rotate, message references and
        # message-id keys relabel.  Bus ids, the bus dict order, and the
        # per-bus geometry are untouched — a bus's ring position derives
        # from its message's source, so swapping the message moves it.
        engine = self.engine
        engine._queues = [
            deque(replace[m.message_id] for m in
                  engine._queues[(s - rotation) % nodes])
            for s in range(nodes)
        ]
        engine._deferred = [
            deque(replace[m.message_id] for m in
                  engine._deferred[(s - rotation) % nodes])
            for s in range(nodes)
        ]
        engine._tx_active = [engine._tx_active[(s - rotation) % nodes]
                             for s in range(nodes)]
        engine._rx_active = [engine._rx_active[(s - rotation) % nodes]
                             for s in range(nodes)]
        engine._awaiting_retry_by_node = [
            engine._awaiting_retry_by_node[(s - rotation) % nodes]
            for s in range(nodes)
        ]
        engine._rx_holders = {
            bus_id: {turn(node) for node in holders}
            for bus_id, holders in engine._rx_holders.items()
        }
        for record in engine.records.values():
            record.message = replace[record.message.message_id]
            record.tap_delivered_at = {
                turn(node): when
                for node, when in record.tap_delivered_at.items()
            }
        engine.records = {
            record.message.message_id: record
            for record in sorted(engine.records.values(),
                                 key=lambda r: r.message.message_id)
        }
        engine._lifecycle = {
            relabelling[mid]: state
            for mid, state in sorted(engine._lifecycle.items())
        }
        for bus in self.buses.values():
            bus.message = replace[bus.message.message_id]
        for callback in self.timers.callbacks:
            callback._message = replace[  # type: ignore[attr-defined]
                callback._message.message_id  # type: ignore[attr-defined]
            ]
        if nodes % 2 == 0:
            self.cycle += rotation

    # -- properties ------------------------------------------------------
    def check(self) -> List[str]:
        violations: List[str] = []
        try:
            validate_ports(self.grid, self.buses)
        except ProtocolError as exc:
            violations.append(f"table1: {exc}")
        try:
            check_grid_bus_agreement(self.grid, self.buses)
            check_bus_shapes(self.buses, self.config.lanes)
        except InvariantViolation as exc:
            violations.append(f"structure: {exc}")
        for bus in self.buses.values():
            if bus.phase in _ESTABLISHED_PHASES and (
                not bus.complete or bus.released_from is not None
            ):
                violations.append(
                    f"theorem1: established {bus.describe()} is not intact"
                )
        return violations

    # -- signature -------------------------------------------------------
    def raw_signature(self) -> Tuple[object, ...]:
        """The un-quotiented signature; see ``_transform_signature`` for
        the component layout and how symmetries act on it."""
        return self.engine.exploration_signature() + (
            tuple(self.timers.message_ids()),
            self.cycle & 1,
            self.grid.health_signature(),
            self.fails_used,
        )


# ---------------------------------------------------------------------------
# Symmetry quotient
# ---------------------------------------------------------------------------

#: One symmetry: (ring rotation r, message-id relabelling pi).  Applying
#: it maps node i -> (i + r) % N and message m -> pi[m].
GroupElement = Tuple[int, Dict[int, int]]

#: Internal: group elements with a precomputed is-identity flag.
_Prepared = Tuple[int, Dict[int, int], bool]


def _rotation_relabelling(
    messages: Sequence[Message], nodes: int, rotation: int
) -> Optional[Dict[int, int]]:
    """Message-id bijection realising ``rotation``, or ``None``.

    Rotating the ring by ``r`` maps a message ``(source, destination)``
    to ``((source+r) % N, (destination+r) % N)``; the rotation is a
    symmetry of the scenario only if some bijection of message ids makes
    the rotated multiset identical to the original.  Messages are
    grouped into classes by their full route shape; within matched
    classes ids are paired in sorted order, which makes the chosen maps
    compose (sorted-order pairing of class bijections is closed under
    composition), so the returned elements always form a group.
    """
    def shape(message: Message, shift: int) -> Tuple[object, ...]:
        return (
            (message.source + shift) % nodes,
            (message.destination + shift) % nodes,
            message.data_flits,
            message.created_at,
            tuple((stop + shift) % nodes
                  for stop in message.extra_destinations),
        )

    classes: Dict[Tuple[object, ...], List[int]] = {}
    rotated: Dict[Tuple[object, ...], List[int]] = {}
    for message in messages:
        classes.setdefault(shape(message, 0), []).append(message.message_id)
        rotated.setdefault(
            shape(message, rotation), []
        ).append(message.message_id)
    if set(classes) != set(rotated):
        return None
    relabelling: Dict[int, int] = {}
    for key, targets in classes.items():
        sources = rotated[key]
        if len(sources) != len(targets):
            return None
        for source_id, target_id in zip(sorted(sources), sorted(targets)):
            relabelling[source_id] = target_id
    return relabelling


def symmetry_group(
    config: RMBConfig,
    messages: Sequence[Message],
    fault_targets: Optional[Tuple[Tuple[int, int], ...]] = None,
) -> List[GroupElement]:
    """Valid ring-rotation symmetries of a lifecycle scenario.

    Always contains the identity.  A rotation qualifies when the message
    multiset maps onto itself (see :func:`_rotation_relabelling`) and,
    if fault moves are restricted to specific targets, when it also
    preserves the target set.  Reflections are *not* considered: the
    routing ring is unidirectional (headers travel clockwise), so
    reflection does not map protocol states onto protocol states.

    The elements need not commute with the engine's dynamics (its
    intra-tick serialisation is tied to absolute node indices, so they
    cannot); the explorer compensates by expanding every stored state
    under each element concretely (:meth:`_World.rotate`).  What *is*
    required is that the transforms form a group action on signatures,
    which the sorted-order relabelling and the parity rule in
    :func:`_transform_signature` guarantee for any ring size.
    """
    nodes = config.nodes
    target_set = None if fault_targets is None else set(fault_targets)
    group: List[GroupElement] = []
    for rotation in range(nodes):
        if target_set is not None:
            moved = {((s + rotation) % nodes, lane) for s, lane in target_set}
            if moved != target_set:
                continue
        relabelling = _rotation_relabelling(messages, nodes, rotation)
        if relabelling is not None:
            group.append((rotation, relabelling))
    return group


def _prepare_group(group: Sequence[GroupElement]) -> List[_Prepared]:
    return [
        (
            rotation,
            relabelling,
            rotation == 0 and all(k == v for k, v in relabelling.items()),
        )
        for rotation, relabelling in group
    ]


def _transform_signature(
    sig: Tuple[object, ...], nodes: int, rotation: int,
    relabelling: Dict[int, int],
) -> Tuple[object, ...]:
    """Apply one symmetry to a raw signature, purely structurally.

    Layout (indices into ``sig``): 0 queues, 1 deferred, 2 bus order,
    3 bus states, 4 stalls, 5 records, 6 tx_active, 7 rx_active,
    8 awaiting_retry, 9 timer ids, 10 compaction-cycle parity,
    11 fault health, 12 fails_used.  Node-indexed tuples rotate; message
    ids relabel; sorted collections re-sort.  On an even ring the cycle
    parity shifts with the rotation (the D2 alternation rule keys on
    ``(segment + lane + cycle) % 2``, so rotating segments by ``r``
    matches advancing the cycle by ``r`` — and ``r mod 2`` respects
    composition exactly when ``N`` is even); on an odd ring the parity
    stays fixed, the only choice that still composes as a group action.
    """
    (queues, deferred, bus_order, bus_states, stalls, records,
     tx_active, rx_active, awaiting, timer_ids, parity, health,
     fails_used) = sig

    def rotate_nodes(values: Tuple[object, ...]) -> Tuple[object, ...]:
        return tuple(values[(i - rotation) % nodes] for i in range(nodes))

    return (
        rotate_nodes(tuple(
            tuple(relabelling[mid] for mid in queue)
            for queue in queues  # type: ignore[union-attr]
        )),
        rotate_nodes(tuple(
            tuple(relabelling[mid] for mid in queue)
            for queue in deferred  # type: ignore[union-attr]
        )),
        tuple(relabelling[mid] for mid in bus_order),  # type: ignore[union-attr]
        tuple(
            (
                relabelling[mid],
                phase,
                hops,
                signal_position,
                data_sent,
                released_from,
                tuple(sorted(
                    (node + rotation) % nodes
                    for node in holders  # type: ignore[union-attr]
                )),
            )
            for (mid, phase, hops, signal_position, data_sent,
                 released_from, holders) in bus_states  # type: ignore[union-attr]
        ),
        tuple(sorted(
            (relabelling[mid], ticks)
            for mid, ticks in stalls  # type: ignore[union-attr]
        )),
        tuple(sorted(
            (relabelling[entry[0]],) + tuple(entry[1:])
            for entry in records  # type: ignore[union-attr]
        )),
        rotate_nodes(tx_active),  # type: ignore[arg-type]
        rotate_nodes(rx_active),  # type: ignore[arg-type]
        rotate_nodes(awaiting),  # type: ignore[arg-type]
        tuple(sorted(
            relabelling[mid] for mid in timer_ids  # type: ignore[union-attr]
        )),
        ((parity + rotation) & 1 if nodes % 2 == 0  # type: ignore[operator]
         else parity),
        tuple(sorted(
            ((segment + rotation) % nodes, lane, value)
            for segment, lane, value in health  # type: ignore[union-attr]
        )),
        fails_used,
    )


def _canonical_signature(
    sig: Tuple[object, ...], nodes: int, group: Sequence[_Prepared]
) -> Tuple[object, ...]:
    """Orbit representative: the minimum transformed signature."""
    best = None
    for rotation, relabelling, is_identity in group:
        candidate = (
            sig if is_identity
            else _transform_signature(sig, nodes, rotation, relabelling)
        )
        if best is None or candidate < best:  # type: ignore[operator]
            best = candidate
    assert best is not None  # group always contains the identity
    return best


def _digest(canonical: Tuple[object, ...]) -> bytes:
    """128-bit hash-compaction digest of a canonical signature."""
    return hashlib.blake2b(
        repr(canonical).encode(), digest_size=16
    ).digest()


def _state_key(
    world: _World, group: Sequence[_Prepared], options: ExploreOptions
) -> StateKey:
    canonical = _canonical_signature(
        world.raw_signature(), world.config.nodes, group
    )
    return _digest(canonical) if options.hash_compact else canonical


# ---------------------------------------------------------------------------
# Fast world cloning
# ---------------------------------------------------------------------------

class _Cloner:
    """Pickle-based world forking with shared immutables.

    Forking via pickle is ~2x faster than ``copy.deepcopy`` on these
    object graphs, and persistent ids let every clone share the frozen
    :class:`RMBConfig` and the (never-mutated) :class:`Message` objects
    instead of duplicating them — the frontier stores compressed pickled
    worlds, so the per-state footprint matters.
    """

    def __init__(self, config: RMBConfig, messages: Sequence[Message]) -> None:
        self._objects: List[object] = [config, *messages]
        self._ids = {id(obj): index
                     for index, obj in enumerate(self._objects)}

    def dumps(self, world: _World) -> bytes:
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        ids = self._ids
        pickler.persistent_id = (  # type: ignore[method-assign]
            lambda obj: ids.get(id(obj))
        )
        pickler.dump(world)
        return buffer.getvalue()

    def loads(self, data: bytes) -> _World:
        unpickler = pickle.Unpickler(io.BytesIO(data))
        objects = self._objects
        unpickler.persistent_load = (  # type: ignore[method-assign]
            lambda pid: objects[pid]
        )
        world = unpickler.load()
        assert isinstance(world, _World)
        return world


# ---------------------------------------------------------------------------
# Counterexamples
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Counterexample:
    """A violating path, as a deterministic replayable action script.

    ``actions`` is the exact action sequence from the initial state;
    ``state_key`` is the canonical key (signature or digest) of the
    final state, so a replay can prove it reached the same place.
    """

    kind: str          # "violation" | "deadlock"
    description: str
    actions: Tuple[Action, ...]
    state_key: StateKey = None

    def script(self) -> str:
        """The action path, one action per line (for logs and reports)."""
        return "\n".join(_describe(action) for action in self.actions)


@dataclass
class ReplayResult:
    """Outcome of driving a script through a fresh world."""

    violations: List[str]
    state_key: StateKey
    pending: int           # engine.pending() at the end of the script
    armed_timers: int      # captured retry timers at the end
    world: _World          # the final world, for further inspection

    def matches(self, trace: Counterexample) -> bool:
        """True when the replay reached the trace's recorded state."""
        return self.state_key == trace.state_key


def run_script(
    config: RMBConfig,
    messages: Sequence[Message],
    actions: Sequence[Action],
    options: Optional[ExploreOptions] = None,
) -> ReplayResult:
    """Apply a fixed action script to a fresh world, collecting checks.

    This is the deterministic single-path twin of
    :func:`explore_lifecycle`: same harness, same invariant checks, no
    forking.  Used by the counterexample replayer and by seeded
    fail/evacuate/repair conformance tests.
    """
    options = options or ExploreOptions()
    options.validate(config)
    group = _prepare_group(
        symmetry_group(config, messages, options.fault_targets)
        if options.symmetry else [(0, {})]
    )
    world = _World(config, messages, options)
    violations = [f"initial: {problem}" for problem in world.check()]
    for action in actions:
        step_violation = world.apply(action)
        if step_violation:
            violations.append(f"{_describe(action)}: {step_violation}")
        violations.extend(
            f"after {_describe(action)}: {problem}"
            for problem in world.check()
        )
    return ReplayResult(
        violations=violations,
        state_key=_state_key(world, group, options),
        pending=world.engine.pending(),
        armed_timers=len(world.timers.callbacks),
        world=world,
    )


def replay_counterexample(
    config: RMBConfig,
    messages: Sequence[Message],
    trace: Counterexample,
    options: Optional[ExploreOptions] = None,
) -> ReplayResult:
    """Replay a checker counterexample through the real engines.

    Must be called with the same scenario and options the exploration
    ran with; ``result.matches(trace)`` then confirms the replay landed
    on the recorded violating state.
    """
    return run_script(config, messages, trace.actions, options)


# ---------------------------------------------------------------------------
# Lifecycle explorer: search
# ---------------------------------------------------------------------------

@dataclass
class LifecycleReport:
    """Result of one exhaustive lifecycle exploration."""

    label: str
    states: int = 0                  # canonical states explored
    edges: int = 0
    completed_runs: int = 0          # reachable quiescent states
    violations: List[str] = field(default_factory=list)
    deadlocks: List[str] = field(default_factory=list)
    traces: List[Counterexample] = field(default_factory=list)
    group_order: int = 1             # symmetry group size (1 = exact)
    mode: str = "exact"              # seen-set representation
    fault_edges: int = 0             # edges taken by fail/kill/repair
    state_keys: List[StateKey] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.deadlocks


_MAX_REPORTED = 20


def explore_lifecycle(
    config: RMBConfig,
    messages: Sequence[Message],
    label: str = "",
    max_states: int = 100_000,
    options: Optional[ExploreOptions] = None,
) -> LifecycleReport:
    """Enumerate every reachable joint protocol state of ``messages``.

    From each state the explorer forks the world and tries every
    enabled action (tick / compaction pass / fire one retry timer /
    fault moves when budgeted), checking the per-state properties on
    each successor and finally the graph-level deadlock-freedom
    property over the whole reachable set.  ``options`` selects the
    scaling modes; the default reproduces the exact PR-5 explorer.
    """
    options = options or ExploreOptions()
    options.validate(config)
    report = LifecycleReport(
        label=label or f"{config.nodes}x{config.lanes}",
        mode="hash" if options.hash_compact else "exact",
    )
    group = _prepare_group(
        symmetry_group(config, messages, options.fault_targets)
        if options.symmetry else [(0, {})]
    )
    report.group_order = len(group)

    root = _World(config, messages, options)
    cloner = _Cloner(config, messages)
    for problem in root.check():
        report.violations.append(f"initial: {problem}")

    root_key = _state_key(root, group, options)
    index: Dict[StateKey, int] = {root_key: 0}
    keys: List[StateKey] = [root_key]
    parents: List[Optional[Tuple[int, Action, int]]] = [None]
    successors: List[List[Tuple[int, bool]]] = [[]]
    is_goal: List[bool] = [_is_goal(root)]
    frontier: deque[Tuple[int, bytes]] = deque(
        [(0, zlib.compress(cloner.dumps(root), 1))]
    )

    def record_trace(kind: str, description: str, state: int,
                     extra: Optional[Tuple[int, Action, int]] = None) -> None:
        """Store a replayable path to ``state``.

        ``extra`` is the (parent, action, rotation) edge that produced
        the state when the violation fired on the edge itself; deadlock
        traces follow the BFS tree via ``parents`` alone.  Tree edges
        always connect the *concrete* stored worlds — an edge expanded
        from a rotated orbit member contributes a ``("rotate", r)``
        pseudo-action before its protocol action — so the script
        replays exactly even under symmetry quotienting.
        """
        if len(report.traces) >= _MAX_REPORTED:
            return
        path: List[Action] = []
        cursor: Optional[Tuple[int, Action, int]] = (
            extra if extra is not None else parents[state]
        )
        while cursor is not None:
            parent, action, rotation = cursor
            path.append(action)
            if rotation:
                path.append(("rotate", rotation))
            cursor = parents[parent]
        path.reverse()
        report.traces.append(Counterexample(
            kind=kind, description=description,
            actions=tuple(path), state_key=keys[state],
        ))

    while frontier:
        state, blob = frontier.popleft()
        report.states += 1
        data = zlib.decompress(blob)
        world = cloner.loads(data)
        # Orbit members to expand: the stored world plus, in symmetry
        # mode, its image under every group element producing a distinct
        # signature.  The engine's intra-tick serialisation is not
        # rotation-covariant, so a rotated member's successors are not
        # derivable from the stored member's — each must run concretely.
        member_rotations = [0]
        if len(group) > 1:
            sig = world.raw_signature()
            member_sigs = {sig}
            for rotation, relabelling, is_identity in group:
                if is_identity:
                    continue
                image = _transform_signature(
                    sig, config.nodes, rotation, relabelling
                )
                if image not in member_sigs:
                    member_sigs.add(image)
                    member_rotations.append(rotation)
        for member_rotation in member_rotations:
            if member_rotation == 0:
                member, member_data = world, data
            else:
                member = cloner.loads(data)
                member.rotate(member_rotation)
                member_data = cloner.dumps(member)
            enabled = member.actions()
            for position, action in enumerate(enabled):
                child = member if position == 0 else cloner.loads(member_data)
                step_violation = child.apply(action)
                problems = child.check()
                child_key = _state_key(child, group, options)
                child_index = index.get(child_key)
                if child_index is None:
                    child_index = len(keys)
                    index[child_key] = child_index
                    keys.append(child_key)
                    parents.append((state, action, member_rotation))
                    successors.append([])
                    is_goal.append(_is_goal(child))
                    frontier.append(
                        (child_index, zlib.compress(cloner.dumps(child), 1))
                    )
                    if len(keys) > max_states:
                        raise ExplorationError(
                            f"{report.label}: > {max_states} reachable states"
                        )
                if step_violation:
                    if len(report.violations) < _MAX_REPORTED:
                        report.violations.append(
                            f"{_describe(action)}: {step_violation}"
                        )
                    record_trace("violation", step_violation, child_index,
                                 extra=(state, action, member_rotation))
                for problem in problems:
                    if len(report.violations) < _MAX_REPORTED:
                        report.violations.append(
                            f"after {_describe(action)}: {problem}"
                        )
                    record_trace("violation", problem, child_index,
                                 extra=(state, action, member_rotation))
                is_fault = action[0] in _FAULT_KINDS
                if is_fault:
                    report.fault_edges += 1
                successors[state].append((child_index, is_fault))
                report.edges += 1

    report.completed_runs = sum(is_goal)
    stuck = _find_deadlocks(successors, is_goal)
    report.deadlocks = [
        f"state #{state} cannot reach quiescence or a retry timer "
        "by protocol moves alone"
        for state in stuck[:_MAX_REPORTED]
    ]
    for state in stuck[:_MAX_REPORTED]:
        record_trace("deadlock",
                     f"state #{state} cannot reach a goal state", state)
    if options.keep_state_keys:
        report.state_keys = keys
    return report


def _is_goal(world: _World) -> bool:
    """Goal for deadlock freedom: quiescent, or a retry timer is armed."""
    return world.engine.pending() == 0 or bool(world.timers.callbacks)


def _describe(action: Action) -> str:
    kind = action[0]
    if kind == "timer":
        return f"timer(msg{action[1]})"
    if kind == "rotate":
        return f"rotate({action[1]})"
    if kind in _FAULT_KINDS:
        return f"{kind}({action[1]},{action[2]})"
    return str(kind)


def _find_deadlocks(
    successors: Sequence[Sequence[Tuple[int, bool]]],
    is_goal: Sequence[bool],
) -> List[int]:
    """States that cannot reach any goal state (backward closure).

    Only protocol edges count: a fault move is the *environment*
    breaking or repairing hardware, and liveness must never depend on
    the environment cooperating.  (This is also what keeps the known
    4x1 wedge flagged when fault moves are enabled — ``kill`` would
    "free" it by tearing a bus down.)
    """
    count = len(successors)
    predecessors: List[List[int]] = [[] for _ in range(count)]
    for state, children in enumerate(successors):
        for child, is_fault in children:
            if not is_fault:
                predecessors[child].append(state)
    can_reach = [bool(is_goal[state]) for state in range(count)]
    work = deque(state for state in range(count) if can_reach[state])
    while work:
        state = work.popleft()
        for previous in predecessors[state]:
            if not can_reach[previous]:
                can_reach[previous] = True
                work.append(previous)
    return [state for state in range(count) if not can_reach[state]]


# ---------------------------------------------------------------------------
# Scenario sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One lifecycle-exploration configuration."""

    label: str
    nodes: int
    lanes: int
    routes: Tuple[Tuple[int, int], ...]
    data_flits: int = 1
    header_timeout: Optional[float] = 3.0
    max_retries: Optional[int] = 1
    extend_up: bool = True

    def config(self) -> RMBConfig:
        return exploration_config(
            self.nodes,
            self.lanes,
            header_timeout=self.header_timeout,
            max_retries=self.max_retries,
            extend_up=self.extend_up,
        )

    def messages(self) -> List[Message]:
        return [
            Message(message_id=i, source=src, destination=dst,
                    data_flits=self.data_flits)
            for i, (src, dst) in enumerate(self.routes)
        ]


def default_scenarios() -> List[Scenario]:
    """The E30 sweep: N <= 5, k <= 3, <= 3 in-flight messages."""
    return [
        Scenario("2x1-pair", 2, 1, ((0, 1), (1, 0))),
        Scenario("3x2-ring", 3, 2, ((0, 1), (1, 2), (2, 0))),
        Scenario("4x1-cross", 4, 1, ((0, 2), (1, 3))),
        Scenario("4x2-overlap", 4, 2, ((0, 2), (1, 3), (2, 0))),
        Scenario("4x3-overlap", 4, 3, ((0, 2), (1, 3), (3, 1))),
        Scenario("5x2-odd", 5, 2, ((0, 2), (2, 4), (4, 1))),
        Scenario("5x3-odd", 5, 3, ((0, 3), (2, 0), (3, 1))),
    ]


def smoke_scenarios() -> List[Scenario]:
    """Small configurations for the CI smoke job (N=3, k=2)."""
    return [
        Scenario("3x2-pair", 3, 2, ((0, 1), (1, 0))),
        Scenario("3x2-ring", 3, 2, ((0, 1), (1, 2), (2, 0))),
    ]


def fault_scenarios() -> List[Scenario]:
    """The fault-exploration sweep: deadlock freedom under degradation.

    Run with ``fault_budget >= 1`` these verify that every reachable
    state — including mid-outage and post-repair ones — can still reach
    quiescence or a retry timer by protocol moves alone, at N up to 6.
    """
    return [
        Scenario("3x2-pair", 3, 2, ((0, 1), (1, 0))),
        Scenario("4x1-cross", 4, 1, ((0, 2), (1, 3))),
        Scenario("4x2-ring", 4, 2, ((0, 1), (1, 2), (2, 3), (3, 0))),
        Scenario("6x2-tri", 6, 2, ((0, 2), (2, 4), (4, 0))),
    ]


def scale_scenario() -> Scenario:
    """The E31 scale target: N=8, k=4, rotation-symmetric load.

    Six messages — two span-3 and four span-5 routes — forming a
    rotation-by-4-invariant pattern (symmetry group order 2).  The
    long wrapping spans keep the lanes contended: 249,792 exact
    states folding to 131,375 canonical ones, where hash compaction
    cuts peak memory ~7x (EXPERIMENTS.md E31).  Run via
    ``python -m repro.cli explore --scale`` (minutes, offline — not
    part of the CI smoke set).
    """
    return Scenario(
        "8x4-scale", 8, 4,
        ((0, 3), (4, 7), (1, 4), (5, 0), (2, 7), (6, 3)),
    )


def deadlock_scenario() -> Scenario:
    """A known circular wait, used to prove the detector has teeth.

    Four messages each span half a 4-node single-lane ring; every
    header holds its own output segment while waiting for the next
    node's, which the next message holds.  With ``header_timeout``
    disabled nothing ever backs off, so the wedge is permanent — the
    explorer must flag it.  (D8's timeout exists precisely because the
    paper leaves this corner undefined.)
    """
    return Scenario(
        "4x1-wedge", 4, 1, ((0, 2), (1, 3), (2, 0), (3, 1)),
        header_timeout=None, max_retries=None,
    )


@dataclass
class SweepReport:
    """Aggregate of one full exploration sweep."""

    handshake: List[HandshakeReport] = field(default_factory=list)
    lifecycle: List[LifecycleReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.handshake) and all(
            r.ok for r in self.lifecycle
        )

    @property
    def total_states(self) -> int:
        return sum(r.states for r in self.handshake) + sum(
            r.states for r in self.lifecycle
        )

    def lines(self) -> List[str]:
        out = []
        for hs in self.handshake:
            status = "ok" if hs.ok else f"{len(hs.violations)} VIOLATIONS"
            out.append(
                f"handshake N={hs.nodes}: {hs.states} states, "
                f"{hs.edges} edges, max skew {hs.max_skew} [{status}]"
            )
        for lc in self.lifecycle:
            problems = len(lc.violations) + len(lc.deadlocks)
            status = "ok" if lc.ok else f"{problems} PROBLEMS"
            extras = ""
            if lc.group_order > 1 or lc.mode != "exact" or lc.fault_edges:
                parts = []
                if lc.group_order > 1:
                    parts.append(f"sym x{lc.group_order}")
                if lc.mode != "exact":
                    parts.append(lc.mode)
                if lc.fault_edges:
                    parts.append(f"{lc.fault_edges} fault edges")
                extras = " (" + ", ".join(parts) + ")"
            out.append(
                f"lifecycle {lc.label}: {lc.states} states, {lc.edges} "
                f"edges, {lc.completed_runs} quiescent{extras} [{status}]"
            )
            for violation in lc.violations:
                out.append(f"  violation: {violation}")
            for deadlock in lc.deadlocks:
                out.append(f"  deadlock: {deadlock}")
        return out


def explore_all(
    handshake_nodes: Iterable[int] = (2, 3, 4, 5),
    scenarios: Optional[Sequence[Scenario]] = None,
    max_states: int = 100_000,
    options: Optional[ExploreOptions] = None,
) -> SweepReport:
    """Run the full default sweep: handshake sizes plus lifecycle scenarios."""
    options = options or ExploreOptions()
    report = SweepReport()
    for nodes in handshake_nodes:
        report.handshake.append(
            explore_handshake(nodes, max_states=max_states,
                              symmetry=options.symmetry)
        )
    for scenario in (default_scenarios() if scenarios is None else scenarios):
        report.lifecycle.append(
            explore_lifecycle(
                scenario.config(), scenario.messages(),
                label=scenario.label, max_states=max_states,
                options=options,
            )
        )
    return report

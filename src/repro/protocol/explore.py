"""Bounded model checking of the RMB protocol state machines.

The transition tables in :mod:`repro.protocol.lifecycle` and
:mod:`repro.protocol.handshake` make the protocol's legal moves
*enumerable*, so on small configurations we can do better than sampling
behaviour by simulation: exhaustively enumerate every reachable joint
state and machine-check the paper's correctness claims on each one.

Two explorers live here:

:func:`explore_handshake`
    Pure breadth-first search over the odd/even compaction handshake
    (paper Section 2.5, rules 1-5).  Joint state = one
    ``(phase, cycle)`` pair per INC; each step lets one INC observe its
    neighbours and apply :func:`repro.protocol.handshake.handshake_step`.
    Checked on every reachable state:

    * the Gray-code invariant — the ``(OD, OC)`` bits always equal
      ``BITS_OF_PHASE[phase]`` (Figure 10's encoding);
    * **Lemma 1** — neighbouring INCs' cycle counts differ by at most 1;
    * progress — some INC always has an enabled rule (the handshake
      itself can never wedge the ring).

:func:`explore_lifecycle`
    Breadth-first search over the *real* routing and compaction engines
    driven in a sealed mini-harness: time pinned to zero, retry timers
    captured in a bag instead of a simulator queue, no RNG, no tracing.
    The nondeterminism explored is scheduling — from each state we fork
    the world (``deepcopy``) and try every enabled action: one flit
    tick, one synchronous compaction pass, or firing any pending retry
    timer.  Checked on every reachable state:

    * **Table 1 legality** — every occupied status register holds a
      legal code and no input port drives two outputs
      (:func:`repro.core.ports.validate_ports`);
    * structural soundness — grid/bus agreement, connected ±1 bus
      shapes (:mod:`repro.core.invariants`);
    * **Theorem 1, make-before-break** — across every compaction pass,
      established buses stay complete and their per-hop lanes never
      rise (compaction moves are only downward);
    * **deadlock freedom** — on the full reachability graph, every
      state with pending work can reach either quiescence
      (``pending() == 0``) or a state holding a retry timer.  A state
      that can do neither is a genuine wedge, reported as a deadlock.

Exploration is bounded by construction — small ``N``, ``k``, message
count, ``data_flits``, ``max_retries`` and ``header_timeout`` keep the
signature space finite — and additionally by ``max_states`` as a
safety net.  :func:`explore_all` runs the default sweep used by
experiment E30 and the CI smoke job.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.compaction import CompactionEngine
from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.core.invariants import check_bus_shapes, check_grid_bus_agreement
from repro.core.ports import validate_ports
from repro.core.routing import RoutingEngine
from repro.core.segments import SegmentGrid
from repro.core.virtual_bus import BusPhase, VirtualBus
from repro.errors import InvariantViolation, ProtocolError
from repro.protocol.handshake import (
    BITS_OF_PHASE,
    HandshakePhase,
    HandshakeState,
    NeighbourBits,
    handshake_step,
)

__all__ = [
    "ExplorationError",
    "HandshakeReport",
    "LifecycleReport",
    "Scenario",
    "SweepReport",
    "default_scenarios",
    "deadlock_scenario",
    "explore_all",
    "explore_handshake",
    "explore_lifecycle",
    "exploration_config",
]

#: Phases during which a virtual bus is *established* in the sense of
#: Theorem 1: the circuit has been acknowledged and data may flow, so
#: compaction must move it without ever breaking it.
_ESTABLISHED_PHASES = frozenset(
    {BusPhase.ACK_RETURN, BusPhase.STREAMING, BusPhase.DRAINING}
)


class ExplorationError(RuntimeError):
    """The state space exceeded the configured ``max_states`` bound."""


# ---------------------------------------------------------------------------
# Handshake explorer
# ---------------------------------------------------------------------------

#: Joint handshake state: per-INC ``(phase, cycle - min(cycles))``.
_HandshakeJoint = Tuple[Tuple[HandshakePhase, int], ...]


@dataclass
class HandshakeReport:
    """Result of one exhaustive handshake exploration."""

    nodes: int
    states: int = 0
    edges: int = 0
    max_skew: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _canonical_handshake(
    cells: Sequence[Tuple[HandshakePhase, int]]
) -> _HandshakeJoint:
    floor = min(cycle for _, cycle in cells)
    return tuple((phase, cycle - floor) for phase, cycle in cells)


def explore_handshake(nodes: int, max_states: int = 100_000) -> HandshakeReport:
    """Enumerate every reachable joint state of ``nodes`` handshaking INCs.

    Each INC runs rules 1-5 off its own clock; a step is one INC taking
    one clock edge.  Cycle counters are canonicalised relative to the
    ring minimum, so the reachable set is finite exactly when Lemma 1
    holds (skew stays bounded); a Lemma 1 violation is reported and the
    offending branch is not expanded further.
    """
    if nodes < 2:
        raise ProtocolError(f"handshake exploration needs >= 2 INCs, got {nodes}")
    report = HandshakeReport(nodes=nodes)
    initial = _canonical_handshake([(HandshakePhase.WORK, 0)] * nodes)
    seen = {initial}
    frontier: deque[_HandshakeJoint] = deque([initial])
    while frontier:
        joint = frontier.popleft()
        report.states += 1
        stepped = 0
        for index in range(nodes):
            phase, cycle = joint[index]
            od, oc = BITS_OF_PHASE[phase]
            left_phase = joint[(index - 1) % nodes][0]
            right_phase = joint[(index + 1) % nodes][0]
            after, rule = handshake_step(
                HandshakeState(phase, od, oc),
                NeighbourBits(*BITS_OF_PHASE[left_phase]),
                NeighbourBits(*BITS_OF_PHASE[right_phase]),
            )
            if rule is None:
                continue  # guard not satisfied: this INC waits
            stepped += 1
            if (after.od, after.oc) != BITS_OF_PHASE[after.phase]:
                report.violations.append(
                    f"N={nodes} inc{index}: bits {(after.od, after.oc)} "
                    f"disagree with Gray code for phase {after.phase.value}"
                )
                continue
            cells = list(joint)
            cells[index] = (after.phase, cycle + (1 if rule.advances_cycle else 0))
            skew = _max_neighbour_skew(cells)
            report.max_skew = max(report.max_skew, skew)
            if skew > 1:
                report.violations.append(
                    f"N={nodes} inc{index} rule {rule.rule}: neighbour "
                    f"cycle skew {skew} > 1 (Lemma 1)"
                )
                continue  # do not expand past a violation
            child = _canonical_handshake(cells)
            report.edges += 1
            if child not in seen:
                seen.add(child)
                frontier.append(child)
                if len(seen) > max_states:
                    raise ExplorationError(
                        f"handshake N={nodes}: > {max_states} states"
                    )
        if stepped == 0:
            report.violations.append(
                f"N={nodes}: no INC has an enabled rule in {joint!r} "
                "(handshake wedge)"
            )
    return report


def _max_neighbour_skew(cells: Sequence[Tuple[HandshakePhase, int]]) -> int:
    count = len(cells)
    return max(
        abs(cells[i][1] - cells[(i + 1) % count][1]) for i in range(count)
    )


# ---------------------------------------------------------------------------
# Lifecycle explorer
# ---------------------------------------------------------------------------

def _zero_time() -> float:
    """Pinned clock: exploration is untimed, timers fire nondeterministically."""
    return 0.0


def exploration_config(nodes: int, lanes: int, **overrides: object) -> RMBConfig:
    """An :class:`RMBConfig` for exploration, allowing small/odd ``nodes``.

    :class:`RMBConfig` validation requires even ``N >= 4`` because the
    odd/even *handshake* needs consistent parity around the ring.  The
    lifecycle explorer runs synchronous compaction (no handshake), where
    any ``N >= 2`` is meaningful — so we validate against a legal node
    count and then patch the real one in.
    """
    legal_nodes = nodes if nodes >= 4 and nodes % 2 == 0 else 4
    defaults: Dict[str, object] = {
        "synchronous": True,
        "retry_jitter": 0.0,
        "check_level": "off",
    }
    defaults.update(overrides)
    config = RMBConfig(nodes=legal_nodes, lanes=lanes, **defaults)  # type: ignore[arg-type]
    if legal_nodes != nodes:
        if nodes < 2:
            raise ProtocolError(f"exploration needs >= 2 nodes, got {nodes}")
        config = copy.copy(config)
        object.__setattr__(config, "nodes", nodes)
    return config


class _TimerBag:
    """Captures retry-timer callbacks instead of scheduling them.

    The explorer fires captured callbacks nondeterministically, which
    over-approximates every possible timer/tick interleaving — delays
    and jitter become irrelevant, which is exactly right for a model
    checker (the properties must hold for *any* timing).
    """

    def __init__(self) -> None:
        self.callbacks: List[object] = []

    def schedule(self, delay: float, callback: object) -> None:
        self.callbacks.append(callback)

    def message_ids(self) -> List[int]:
        return sorted(
            callback._message.message_id  # type: ignore[attr-defined]
            for callback in self.callbacks
        )

    def fire(self, message_id: int) -> None:
        for index, callback in enumerate(self.callbacks):
            if callback._message.message_id == message_id:  # type: ignore[attr-defined]
                self.callbacks.pop(index)
                callback()  # type: ignore[operator]
                return
        raise ProtocolError(f"no pending timer for msg{message_id}")


class _World:
    """One sealed protocol universe: grid + engines + captured timers."""

    def __init__(self, config: RMBConfig, messages: Sequence[Message]) -> None:
        self.config = config
        self.grid = SegmentGrid(config.nodes, config.lanes)
        self.buses: Dict[int, VirtualBus] = {}
        self.timers = _TimerBag()
        self.engine = RoutingEngine(
            config, self.grid, self.buses,
            now=_zero_time, schedule=self.timers.schedule, rng=None,
        )
        self.compaction = CompactionEngine(config, self.grid, self.buses)
        # Reference scan: exploration states must not depend on the
        # incremental dirty-set (which the signature ignores).
        self.compaction.incremental = False
        self.cycle = 0
        for message in messages:
            self.engine.submit(message)

    # -- actions ---------------------------------------------------------
    def actions(self) -> List[Tuple[str, int]]:
        if self.engine.pending() == 0 and not self.timers.callbacks:
            return []  # quiescent: absorbing state
        enabled: List[Tuple[str, int]] = [("tick", 0), ("compact", 0)]
        enabled.extend(("timer", mid) for mid in self.timers.message_ids())
        return enabled

    def apply(self, action: Tuple[str, int]) -> Optional[str]:
        """Execute one action; returns a violation description or ``None``."""
        kind, arg = action
        if kind == "tick":
            self.engine.flit_tick()
            return None
        if kind == "timer":
            self.timers.fire(arg)
            return None
        # Compaction pass: snapshot established buses for Theorem 1.
        before = {
            bus.bus_id: list(bus.hops)
            for bus in self.buses.values()
            if bus.phase in _ESTABLISHED_PHASES
        }
        self.compaction.global_pass(self.cycle)
        self.cycle += 1
        for bus_id, hops in before.items():
            bus = self.buses.get(bus_id)
            if bus is None or not bus.complete or len(bus.hops) != len(hops):
                return (
                    f"theorem1: established bus {bus_id} broken by "
                    f"compaction ({'gone' if bus is None else bus.describe()})"
                )
            for hop, old_lane in enumerate(hops):
                if bus.hops[hop] > old_lane:
                    return (
                        f"theorem1: {bus.describe()} hop {hop} rose "
                        f"{old_lane} -> {bus.hops[hop]} during compaction"
                    )
        return None

    # -- properties ------------------------------------------------------
    def check(self) -> List[str]:
        violations: List[str] = []
        try:
            validate_ports(self.grid, self.buses)
        except ProtocolError as exc:
            violations.append(f"table1: {exc}")
        try:
            check_grid_bus_agreement(self.grid, self.buses)
            check_bus_shapes(self.buses, self.config.lanes)
        except InvariantViolation as exc:
            violations.append(f"structure: {exc}")
        for bus in self.buses.values():
            if bus.phase in _ESTABLISHED_PHASES and (
                not bus.complete or bus.released_from is not None
            ):
                violations.append(
                    f"theorem1: established {bus.describe()} is not intact"
                )
        return violations

    # -- canonical signature ---------------------------------------------
    def signature(self) -> Tuple[object, ...]:
        engine = self.engine
        by_message = {
            bus.bus_id: bus.message.message_id for bus in self.buses.values()
        }
        queues = tuple(
            tuple(m.message_id for m in q) for q in engine._queues
        )
        deferred = tuple(
            tuple(m.message_id for m in q) for q in engine._deferred
        )
        # Bus creation order matters (tick processing iterates the dict),
        # so record it alongside the per-bus observable state.
        bus_order = tuple(by_message[bus_id] for bus_id in self.buses)
        bus_states = tuple(
            (
                by_message[bus.bus_id],
                bus.phase.value,
                tuple(bus.hops),
                bus.signal_position,
                bus.data_sent,
                -1 if bus.released_from is None else bus.released_from,
                tuple(sorted(engine._rx_holders.get(bus.bus_id, ()))),
            )
            for bus in self.buses.values()
        )
        # Stall counters only influence behaviour through the header
        # timeout (which bounds them); without one they count forever
        # with no effect, so they must not distinguish states.
        if engine.config.header_timeout is None:
            stalls: Tuple[Tuple[int, int], ...] = ()
        else:
            stalls = tuple(
                sorted(
                    (by_message[bus_id], ticks)
                    for bus_id, ticks in engine._stall_ticks.items()
                    if bus_id in self.buses
                )
            )
        records = tuple(
            (
                message_id,
                engine._lifecycle[message_id].value,
                record.retries,
                record.nacks,
                record.fault_nacks,
                record.deferred,
                record.backoff_floor,
                record.abandoned,
                record.shed,
                record.finished,
            )
            for message_id, record in sorted(engine.records.items())
        )
        return (
            queues,
            deferred,
            bus_order,
            bus_states,
            stalls,
            records,
            tuple(self.timers.message_ids()),
            tuple(engine._tx_active),
            tuple(engine._rx_active),
            tuple(engine._awaiting_retry_by_node),
            self.cycle & 1,
        )


@dataclass
class LifecycleReport:
    """Result of one exhaustive lifecycle exploration."""

    label: str
    states: int = 0
    edges: int = 0
    completed_runs: int = 0          # reachable quiescent states
    violations: List[str] = field(default_factory=list)
    deadlocks: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.deadlocks


_MAX_REPORTED = 20


def explore_lifecycle(
    config: RMBConfig,
    messages: Sequence[Message],
    label: str = "",
    max_states: int = 100_000,
) -> LifecycleReport:
    """Enumerate every reachable joint protocol state of ``messages``.

    From each state the explorer forks the world and tries every
    enabled action (tick / compaction pass / fire one retry timer),
    checking the per-state properties on each successor and finally the
    graph-level deadlock-freedom property over the whole reachable set.
    """
    report = LifecycleReport(label=label or f"{config.nodes}x{config.lanes}")
    root = _World(config, messages)
    for violation in root.check():
        report.violations.append(f"initial: {violation}")
    root_sig = root.signature()
    index: Dict[Tuple[object, ...], int] = {root_sig: 0}
    successors: List[List[int]] = [[]]
    is_goal: List[bool] = [_is_goal(root)]
    frontier: deque[_World] = deque([root])
    while frontier:
        world = frontier.popleft()
        report.states += 1
        parent = index[world.signature()]
        for action in world.actions():
            child = copy.deepcopy(world)
            step_violation = child.apply(action)
            if step_violation and len(report.violations) < _MAX_REPORTED:
                report.violations.append(
                    f"{_describe(action)}: {step_violation}"
                )
            for violation in child.check():
                if len(report.violations) < _MAX_REPORTED:
                    report.violations.append(
                        f"after {_describe(action)}: {violation}"
                    )
            sig = child.signature()
            child_index = index.get(sig)
            if child_index is None:
                child_index = len(index)
                index[sig] = child_index
                successors.append([])
                is_goal.append(_is_goal(child))
                frontier.append(child)
                if len(index) > max_states:
                    raise ExplorationError(
                        f"{report.label}: > {max_states} reachable states"
                    )
            successors[parent].append(child_index)
            report.edges += 1
    report.completed_runs = sum(is_goal)
    report.deadlocks = _find_deadlocks(successors, is_goal)
    return report


def _is_goal(world: _World) -> bool:
    """Goal for deadlock freedom: quiescent, or a retry timer is armed."""
    return world.engine.pending() == 0 or bool(world.timers.callbacks)


def _describe(action: Tuple[str, int]) -> str:
    kind, arg = action
    return f"timer(msg{arg})" if kind == "timer" else kind


def _find_deadlocks(
    successors: Sequence[Sequence[int]], is_goal: Sequence[bool]
) -> List[str]:
    """States that cannot reach any goal state (backward closure)."""
    count = len(successors)
    predecessors: List[List[int]] = [[] for _ in range(count)]
    for state, children in enumerate(successors):
        for child in children:
            predecessors[child].append(state)
    can_reach = [bool(is_goal[state]) for state in range(count)]
    work = deque(state for state in range(count) if can_reach[state])
    while work:
        state = work.popleft()
        for previous in predecessors[state]:
            if not can_reach[previous]:
                can_reach[previous] = True
                work.append(previous)
    stuck = [state for state in range(count) if not can_reach[state]]
    return [
        f"state #{state} cannot reach quiescence or a retry timer"
        for state in stuck[:_MAX_REPORTED]
    ]


# ---------------------------------------------------------------------------
# Scenario sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One lifecycle-exploration configuration."""

    label: str
    nodes: int
    lanes: int
    routes: Tuple[Tuple[int, int], ...]
    data_flits: int = 1
    header_timeout: Optional[float] = 3.0
    max_retries: Optional[int] = 1
    extend_up: bool = True

    def config(self) -> RMBConfig:
        return exploration_config(
            self.nodes,
            self.lanes,
            header_timeout=self.header_timeout,
            max_retries=self.max_retries,
            extend_up=self.extend_up,
        )

    def messages(self) -> List[Message]:
        return [
            Message(message_id=i, source=src, destination=dst,
                    data_flits=self.data_flits)
            for i, (src, dst) in enumerate(self.routes)
        ]


def default_scenarios() -> List[Scenario]:
    """The E30 sweep: N <= 5, k <= 3, <= 3 in-flight messages."""
    return [
        Scenario("2x1-pair", 2, 1, ((0, 1), (1, 0))),
        Scenario("3x2-ring", 3, 2, ((0, 1), (1, 2), (2, 0))),
        Scenario("4x1-cross", 4, 1, ((0, 2), (1, 3))),
        Scenario("4x2-overlap", 4, 2, ((0, 2), (1, 3), (2, 0))),
        Scenario("4x3-overlap", 4, 3, ((0, 2), (1, 3), (3, 1))),
        Scenario("5x2-odd", 5, 2, ((0, 2), (2, 4), (4, 1))),
        Scenario("5x3-odd", 5, 3, ((0, 3), (2, 0), (3, 1))),
    ]


def smoke_scenarios() -> List[Scenario]:
    """Small configurations for the CI smoke job (N=3, k=2)."""
    return [
        Scenario("3x2-pair", 3, 2, ((0, 1), (1, 0))),
        Scenario("3x2-ring", 3, 2, ((0, 1), (1, 2), (2, 0))),
    ]


def deadlock_scenario() -> Scenario:
    """A known circular wait, used to prove the detector has teeth.

    Four messages each span half a 4-node single-lane ring; every
    header holds its own output segment while waiting for the next
    node's, which the next message holds.  With ``header_timeout``
    disabled nothing ever backs off, so the wedge is permanent — the
    explorer must flag it.  (D8's timeout exists precisely because the
    paper leaves this corner undefined.)
    """
    return Scenario(
        "4x1-wedge", 4, 1, ((0, 2), (1, 3), (2, 0), (3, 1)),
        header_timeout=None, max_retries=None,
    )


@dataclass
class SweepReport:
    """Aggregate of one full exploration sweep."""

    handshake: List[HandshakeReport] = field(default_factory=list)
    lifecycle: List[LifecycleReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.handshake) and all(
            r.ok for r in self.lifecycle
        )

    @property
    def total_states(self) -> int:
        return sum(r.states for r in self.handshake) + sum(
            r.states for r in self.lifecycle
        )

    def lines(self) -> List[str]:
        out = []
        for hs in self.handshake:
            status = "ok" if hs.ok else f"{len(hs.violations)} VIOLATIONS"
            out.append(
                f"handshake N={hs.nodes}: {hs.states} states, "
                f"{hs.edges} edges, max skew {hs.max_skew} [{status}]"
            )
        for lc in self.lifecycle:
            problems = len(lc.violations) + len(lc.deadlocks)
            status = "ok" if lc.ok else f"{problems} PROBLEMS"
            out.append(
                f"lifecycle {lc.label}: {lc.states} states, {lc.edges} "
                f"edges, {lc.completed_runs} quiescent [{status}]"
            )
            for violation in lc.violations:
                out.append(f"  violation: {violation}")
            for deadlock in lc.deadlocks:
                out.append(f"  deadlock: {deadlock}")
        return out


def explore_all(
    handshake_nodes: Iterable[int] = (2, 3, 4, 5),
    scenarios: Optional[Sequence[Scenario]] = None,
    max_states: int = 100_000,
) -> SweepReport:
    """Run the full default sweep: handshake sizes plus lifecycle scenarios."""
    report = SweepReport()
    for nodes in handshake_nodes:
        report.handshake.append(explore_handshake(nodes, max_states=max_states))
    for scenario in (default_scenarios() if scenarios is None else scenarios):
        report.lifecycle.append(
            explore_lifecycle(
                scenario.config(), scenario.messages(),
                label=scenario.label, max_states=max_states,
            )
        )
    return report

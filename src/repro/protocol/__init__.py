"""Explicit protocol state machines for the RMB network.

The paper's correctness story rests on two interlocking protocols:

* the per-message **lifecycle** — HF/Hack/Dack/Fack/Nack, paper
  Section 2.2 — declared as a transition table in
  :mod:`repro.protocol.lifecycle` and executed by a thin interpreter
  inside :class:`repro.core.routing.RoutingEngine`;
* the odd/even **compaction handshake** — rules 1-5 of Section 2.5,
  Figures 9/10 — declared in :mod:`repro.protocol.handshake` and
  executed by :class:`repro.core.cycles.CycleController`.

Both machines are *data*: every legal ``(state, event) -> (state,
effects)`` arc is enumerable, which is what lets
:mod:`repro.protocol.explore` exhaustively enumerate reachable joint
states on small configurations and machine-check the paper's properties
(Table 1 legality, Lemma 1 skew, Theorem 1 make-before-break, deadlock
freedom) instead of only sampling them by simulation.
"""

from repro.protocol.handshake import (
    HANDSHAKE_TABLE,
    HandshakePhase,
    HandshakeRule,
    HandshakeState,
    guard_satisfied,
    handshake_step,
)
from repro.protocol.lifecycle import (
    LIFECYCLE,
    PHASE_NAME_OF_STATE,
    STATE_OF_PHASE_NAME,
    TERMINAL_STATES,
    Arc,
    Effect,
    LifecycleEvent,
    LifecycleState,
    LifecycleTable,
    RefusalKind,
    Signal,
    has_arc,
    lifecycle_name,
    note_refusal,
    retry_attempts,
    retry_decision,
)

__all__ = [
    "Arc",
    "Effect",
    "HANDSHAKE_TABLE",
    "HandshakePhase",
    "HandshakeRule",
    "HandshakeState",
    "LIFECYCLE",
    "LifecycleEvent",
    "LifecycleState",
    "LifecycleTable",
    "PHASE_NAME_OF_STATE",
    "STATE_OF_PHASE_NAME",
    "TERMINAL_STATES",
    "RefusalKind",
    "Signal",
    "guard_satisfied",
    "handshake_step",
    "has_arc",
    "lifecycle_name",
    "note_refusal",
    "retry_attempts",
    "retry_decision",
]

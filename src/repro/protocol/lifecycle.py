"""Declarative per-message lifecycle FSM — paper Sections 2.2/2.3.

The HF/Hack/Dack/Fack/Nack protocol is expressed here as a transition
table: every legal ``(state, event)`` pair maps to an :class:`Arc`
naming the successor state and a tuple of *effects*.  Effects are a
narrow, static vocabulary of frozen dataclasses; they carry no runtime
values (per-transition context such as the claimed lane travels through
the interpreter's ``ctx`` dict).  :class:`repro.core.routing.RoutingEngine`
owns the interpreter (``RoutingEngine._fire``): it looks up the arc,
updates the lifecycle state and the bus phase, then executes each effect
via a handler method.  An event fired in a state with no declared arc is
a :class:`~repro.errors.ProtocolError` — the table is therefore also a
runtime conformance check, and :mod:`repro.protocol.explore` enumerates
it exhaustively offline.

State map (``→`` = the happy path, branches named at the side)::

    NEW → QUEUED → INJECTED → EXTENDING → ESTABLISHED → STREAMING
           ↑  |        (refuse/timeout/fault/watchdog)      |
           |  └→ RETRY_PENDING ← NACKED ←───────────────────┤
           |       |       ↘ ABANDONED                  DRAINING
           └── RETRY                                        |
    NEW → DEFERRED → QUEUED          DELIVERED ← RELEASING ←┘
    NEW → SHED

``ESTABLISHED`` covers the Hack's walk back to the source
(:class:`~repro.core.virtual_bus.BusPhase` ``ACK_RETURN``); streaming
starts when the Hack arrives (``HACK_AT_SOURCE``).  ``NACKED`` is the
Nack's release walk, ``RELEASING`` the Fack's.  ``INJECTED`` is
transient within the injection tick: the header has claimed the source
segment but not yet entered the extension pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, Mapping, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.flits import MessageRecord
    from repro.core.virtual_bus import BusPhase


class LifecycleState(enum.Enum):
    """Explicit per-message protocol states (one per message, not per bus)."""

    NEW = "new"                      # record created, admission pending
    QUEUED = "queued"                # waiting in the source PE's queue
    DEFERRED = "deferred"            # parked by admission control (S2)
    SHED = "shed"                    # dropped by admission control (terminal)
    INJECTED = "injected"            # header claimed the source segment
    EXTENDING = "extending"          # header advancing segment by segment
    ESTABLISHED = "established"      # accepted; Hack walking back (ACK_RETURN)
    STREAMING = "streaming"          # data flits flowing source -> destination
    DRAINING = "draining"            # FF in flight behind the last data flit
    RELEASING = "releasing"          # Fack walking back, freeing segments
    NACKED = "nacked"                # Nack walking back, freeing segments
    RETRY_PENDING = "retry_pending"  # refusal classified this instant
    RETRY = "retry"                  # backoff timer armed
    DELIVERED = "delivered"          # Fack returned, all ports freed (terminal)
    ABANDONED = "abandoned"          # max_retries exhausted (terminal)


class LifecycleEvent(enum.Enum):
    """Stimuli that drive the lifecycle FSM."""

    ADMIT = "admit"                    # admission verdict: queue it
    DEFER = "defer"                    # admission verdict: park it
    SHED = "shed"                      # admission verdict: drop it
    ADMIT_DEFERRED = "admit_deferred"  # parked request released to the queue
    INJECT = "inject"                  # top-lane segment claimed at the source
    EXTEND = "extend"                  # header advanced one segment
    TAP_JOIN = "tap_join"              # multicast tap reserved its RX port
    ACCEPT = "accept"                  # destination reserved its RX port
    REFUSE = "refuse"                  # busy tap/destination Nacked the header
    HEADER_TIMEOUT = "header_timeout"  # stalled past header_timeout (D8)
    FAULT_NACK = "fault_nack"          # dead column blocks any path (F3)
    FAULT_KILL = "fault_kill"          # DEAD segment under a live bus (F4)
    FORCE_TEARDOWN = "force_teardown"  # watchdog recovery action
    HACK_AT_SOURCE = "hack_at_source"  # Hack finished its walk: circuit up
    FINAL_FLIT = "final_flit"          # last data flit sent; FF follows
    DELIVER = "deliver"                # FF crossed the last hop
    RELEASE_DONE = "release_done"      # reverse walk freed the final segment
    RETRY_ARMED = "retry_armed"        # classifier: schedule a backoff timer
    ABANDON = "abandon"                # classifier: retry budget exhausted
    RETRY_TIMER = "retry_timer"        # backoff timer fired


class RefusalKind(enum.Enum):
    """Why a request bounced — the single retry/refusal classification."""

    NACK = "nack"                # busy destination or tap (paper Nack)
    TIMEOUT = "timeout"          # header stalled past header_timeout (D8)
    FAULT_NACK = "fault_nack"    # dead column: no path can exist (F3)
    FAULT_KILL = "fault_kill"    # bus destroyed under a live transfer (F4)
    WATCHDOG = "watchdog"        # supervision forced a teardown


class Signal(enum.Enum):
    """Reverse/forward wire signals an effect can launch."""

    HACK = "hack"    # acceptance ack, destination -> source
    NACK = "nack"    # refusal, release walk destination -> source
    FACK = "fack"    # final ack, release walk destination -> source
    FINAL = "final"  # final flit (FF), source -> destination


# ---------------------------------------------------------------------------
# Effects
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Effect:
    """Base class for transition effects.

    ``handler`` names the :class:`~repro.core.routing.RoutingEngine`
    method that executes the effect; handlers receive
    ``(message, record, bus, ctx, effect)``.  Effect instances are
    static table data — anything transition-specific flows through
    ``ctx``.
    """

    handler: ClassVar[str] = ""


@dataclass(frozen=True)
class Enqueue(Effect):
    """Append the message to its source PE queue."""

    handler: ClassVar[str] = "_fx_enqueue"


@dataclass(frozen=True)
class Park(Effect):
    """Hold the message in the per-INC deferred queue (admission S2)."""

    handler: ClassVar[str] = "_fx_park"


@dataclass(frozen=True)
class MarkShed(Effect):
    """Drop the message permanently (admission shed policy)."""

    handler: ClassVar[str] = "_fx_mark_shed"


@dataclass(frozen=True)
class OpenBus(Effect):
    """Create the virtual bus and claim the insertion segment.

    Reads ``ctx['lane']``; publishes the new bus as ``ctx['bus']``.
    """

    handler: ClassVar[str] = "_fx_open_bus"


@dataclass(frozen=True)
class ReserveLane(Effect):
    """Claim the next segment for the advancing header.

    Reads ``ctx['segment']`` and ``ctx['lane']``.
    """

    handler: ClassVar[str] = "_fx_reserve_lane"


@dataclass(frozen=True)
class NoteRefusal(Effect):
    """Book a refusal of ``kind`` on the record and engine counters."""

    kind: RefusalKind
    handler: ClassVar[str] = "_fx_note_refusal"


@dataclass(frozen=True)
class SendSignal(Effect):
    """Launch a protocol signal along the virtual bus."""

    signal: Signal
    handler: ClassVar[str] = "_fx_send_signal"


@dataclass(frozen=True)
class MarkEstablished(Effect):
    """The Hack reached the source: the circuit is up, streaming starts."""

    handler: ClassVar[str] = "_fx_mark_established"


@dataclass(frozen=True)
class MarkDelivered(Effect):
    """The FF crossed the last hop: all data is at the destination."""

    handler: ClassVar[str] = "_fx_mark_delivered"


@dataclass(frozen=True)
class ReleaseEndpoints(Effect):
    """Free the TX port and any remaining RX reservations."""

    handler: ClassVar[str] = "_fx_release_endpoints"


@dataclass(frozen=True)
class MarkRefused(Effect):
    """Trace the bus's refusal once its release walk finishes."""

    handler: ClassVar[str] = "_fx_mark_refused"


@dataclass(frozen=True)
class CompleteMessage(Effect):
    """Stamp completion, fire observability and the on_complete chain."""

    handler: ClassVar[str] = "_fx_complete_message"


@dataclass(frozen=True)
class DropBus(Effect):
    """Remove the (fully released) bus from the live set."""

    handler: ClassVar[str] = "_fx_drop_bus"


@dataclass(frozen=True)
class ClassifyRetry(Effect):
    """Run the retry classifier and fire RETRY_ARMED or ABANDON."""

    handler: ClassVar[str] = "_fx_classify_retry"


@dataclass(frozen=True)
class ArmRetryTimer(Effect):
    """Schedule the exponential-backoff retry timer."""

    handler: ClassVar[str] = "_fx_arm_retry_timer"


@dataclass(frozen=True)
class MarkAbandoned(Effect):
    """Give up on the message: retry budget exhausted."""

    handler: ClassVar[str] = "_fx_mark_abandoned"


@dataclass(frozen=True)
class DisarmRetryTimer(Effect):
    """Book the retry timer's expiry (awaiting-retry counters)."""

    handler: ClassVar[str] = "_fx_disarm_retry_timer"


@dataclass(frozen=True)
class HurryRelease(Effect):
    """Fault shortcut (F4): run the whole release walk this instant."""

    handler: ClassVar[str] = "_fx_hurry_release"


# ---------------------------------------------------------------------------
# The transition table
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Arc:
    """One legal transition: successor state plus its effects, in order."""

    target: LifecycleState
    effects: Tuple[Effect, ...] = ()


LifecycleTable = Mapping[Tuple[LifecycleState, LifecycleEvent], Arc]

_S = LifecycleState
_E = LifecycleEvent
_K = RefusalKind

#: Effects shared by every path that turns a live bus into a Nack walk.
_NACK_WALK = SendSignal(Signal.NACK)

LIFECYCLE: Dict[Tuple[LifecycleState, LifecycleEvent], Arc] = {
    # --- admission (submit / deferred release) -------------------------
    (_S.NEW, _E.ADMIT): Arc(_S.QUEUED, (Enqueue(),)),
    (_S.NEW, _E.DEFER): Arc(_S.DEFERRED, (Park(),)),
    (_S.NEW, _E.SHED): Arc(_S.SHED, (MarkShed(),)),
    (_S.DEFERRED, _E.ADMIT_DEFERRED): Arc(_S.QUEUED, (Enqueue(),)),
    # --- injection -----------------------------------------------------
    (_S.QUEUED, _E.INJECT): Arc(_S.INJECTED, (OpenBus(),)),
    (_S.QUEUED, _E.FAULT_NACK): Arc(
        _S.RETRY_PENDING, (NoteRefusal(_K.FAULT_NACK), ClassifyRetry())),
    # INJECTED is transient within the injection tick: the header either
    # resolves immediately (1-hop accept/refuse) or enters the pipeline.
    (_S.INJECTED, _E.EXTEND): Arc(_S.EXTENDING),
    (_S.INJECTED, _E.TAP_JOIN): Arc(_S.INJECTED),
    (_S.INJECTED, _E.ACCEPT): Arc(
        _S.ESTABLISHED, (SendSignal(Signal.HACK),)),
    (_S.INJECTED, _E.REFUSE): Arc(
        _S.NACKED, (NoteRefusal(_K.NACK), _NACK_WALK)),
    # --- header extension ----------------------------------------------
    (_S.EXTENDING, _E.EXTEND): Arc(_S.EXTENDING, (ReserveLane(),)),
    (_S.EXTENDING, _E.TAP_JOIN): Arc(_S.EXTENDING),
    (_S.EXTENDING, _E.ACCEPT): Arc(
        _S.ESTABLISHED, (SendSignal(Signal.HACK),)),
    (_S.EXTENDING, _E.REFUSE): Arc(
        _S.NACKED, (NoteRefusal(_K.NACK), _NACK_WALK)),
    (_S.EXTENDING, _E.HEADER_TIMEOUT): Arc(
        _S.NACKED, (NoteRefusal(_K.TIMEOUT), _NACK_WALK)),
    (_S.EXTENDING, _E.FAULT_NACK): Arc(
        _S.NACKED, (NoteRefusal(_K.FAULT_NACK), _NACK_WALK)),
    (_S.EXTENDING, _E.FORCE_TEARDOWN): Arc(
        _S.NACKED, (NoteRefusal(_K.WATCHDOG), _NACK_WALK)),
    (_S.EXTENDING, _E.FAULT_KILL): Arc(
        _S.NACKED, (NoteRefusal(_K.FAULT_KILL), _NACK_WALK, HurryRelease())),
    # --- acceptance and streaming --------------------------------------
    (_S.ESTABLISHED, _E.HACK_AT_SOURCE): Arc(
        _S.STREAMING, (MarkEstablished(),)),
    (_S.ESTABLISHED, _E.FORCE_TEARDOWN): Arc(
        _S.NACKED, (NoteRefusal(_K.WATCHDOG), _NACK_WALK)),
    (_S.ESTABLISHED, _E.FAULT_KILL): Arc(
        _S.NACKED, (NoteRefusal(_K.FAULT_KILL), _NACK_WALK, HurryRelease())),
    (_S.STREAMING, _E.FINAL_FLIT): Arc(
        _S.DRAINING, (SendSignal(Signal.FINAL),)),
    (_S.STREAMING, _E.FORCE_TEARDOWN): Arc(
        _S.NACKED, (NoteRefusal(_K.WATCHDOG), _NACK_WALK)),
    (_S.STREAMING, _E.FAULT_KILL): Arc(
        _S.NACKED, (NoteRefusal(_K.FAULT_KILL), _NACK_WALK, HurryRelease())),
    (_S.DRAINING, _E.DELIVER): Arc(
        _S.RELEASING, (MarkDelivered(), SendSignal(Signal.FACK))),
    (_S.DRAINING, _E.FORCE_TEARDOWN): Arc(
        _S.NACKED, (NoteRefusal(_K.WATCHDOG), _NACK_WALK)),
    (_S.DRAINING, _E.FAULT_KILL): Arc(
        _S.NACKED, (NoteRefusal(_K.FAULT_KILL), _NACK_WALK, HurryRelease())),
    # --- release walks --------------------------------------------------
    (_S.RELEASING, _E.RELEASE_DONE): Arc(
        _S.DELIVERED, (ReleaseEndpoints(), CompleteMessage(), DropBus())),
    # Data already delivered: the fault only shortcuts the Fack walk.
    (_S.RELEASING, _E.FAULT_KILL): Arc(_S.RELEASING, (HurryRelease(),)),
    (_S.NACKED, _E.RELEASE_DONE): Arc(
        _S.RETRY_PENDING,
        (ReleaseEndpoints(), MarkRefused(), ClassifyRetry(), DropBus())),
    # Already Nack-walking when the fault hit: count the kill (the data
    # was not delivered), then shortcut the remaining walk.
    (_S.NACKED, _E.FAULT_KILL): Arc(
        _S.NACKED, (NoteRefusal(_K.FAULT_KILL), HurryRelease())),
    # --- retry classification -------------------------------------------
    (_S.RETRY_PENDING, _E.RETRY_ARMED): Arc(_S.RETRY, (ArmRetryTimer(),)),
    (_S.RETRY_PENDING, _E.ABANDON): Arc(_S.ABANDONED, (MarkAbandoned(),)),
    (_S.RETRY, _E.RETRY_TIMER): Arc(
        _S.QUEUED, (DisarmRetryTimer(), Enqueue())),
}

#: Terminal states: no outgoing arcs, the message's journey is over.
TERMINAL_STATES = frozenset(
    {_S.SHED, _S.DELIVERED, _S.ABANDONED}
)

#: Bus phase implied by each lifecycle state, for states that own a live
#: (or just-finished) virtual bus.  The interpreter keeps ``bus.phase``
#: in lock-step with the lifecycle so the rest of the system (compaction
#: D9 head rule, watchdog progress signatures, renderers, tests) keeps
#: reading the phase vocabulary it always has.  Values are
#: :class:`~repro.core.virtual_bus.BusPhase` *names* (their ``.value``
#: strings): this module deliberately imports nothing from
#: :mod:`repro.core` at runtime, so the table stays importable from any
#: layer without a cycle.
PHASE_NAME_OF_STATE: Dict[LifecycleState, str] = {
    _S.INJECTED: "extending",
    _S.EXTENDING: "extending",
    _S.ESTABLISHED: "ack_return",
    _S.STREAMING: "streaming",
    _S.DRAINING: "draining",
    _S.RELEASING: "teardown",
    _S.NACKED: "nack_return",
    _S.RETRY_PENDING: "refused",
    _S.DELIVERED: "done",
}

#: Inverse view: the lifecycle state a live bus phase corresponds to.
#: Used to express watchdog incidents, drain errors and livelock
#: diagnostics in the one lifecycle vocabulary (INJECTED is transient
#: within a tick, so EXTENDING is the unique steady-state inverse).
STATE_OF_PHASE_NAME: Dict[str, LifecycleState] = {
    "extending": _S.EXTENDING,
    "ack_return": _S.ESTABLISHED,
    "streaming": _S.STREAMING,
    "draining": _S.DRAINING,
    "teardown": _S.RELEASING,
    "nack_return": _S.NACKED,
    "refused": _S.RETRY_PENDING,
    "done": _S.DELIVERED,
}


def lifecycle_name(phase: Union["BusPhase", str]) -> str:
    """Lifecycle-vocabulary name for a bus phase (for reports/incidents)."""
    value = phase if isinstance(phase, str) else phase.value
    return STATE_OF_PHASE_NAME[value].value


def has_arc(state: LifecycleState, event: LifecycleEvent) -> bool:
    """True when the table declares a transition for ``(state, event)``."""
    return (state, event) in LIFECYCLE


# ---------------------------------------------------------------------------
# Refusal / retry classification (single source of truth)
# ---------------------------------------------------------------------------
def retry_attempts(record: "MessageRecord") -> int:
    """Attempts counted by the exponential backoff (and its floor).

    Every refusal kind that schedules a retry contributes; watchdog
    teardowns count through ``nacks`` (they are booked as Nacks).
    """
    return (record.nacks + record.fault_nacks + record.fault_kills
            + record.retries)


def retry_decision(record: "MessageRecord",
                   max_retries: Optional[int]) -> LifecycleEvent:
    """Classify a refused message: retry again, or give up.

    The budget check reads ``record.retries`` *before* the retry being
    classified is booked, so ``max_retries = n`` allows exactly ``n``
    re-queues after the initial attempt.
    """
    if max_retries is not None and record.retries >= max_retries:
        return LifecycleEvent.ABANDON
    return LifecycleEvent.RETRY_ARMED


def note_refusal(record: "MessageRecord", kind: RefusalKind,
                 now: float) -> None:
    """Book a refusal of ``kind`` on the message record.

    Record-side bookkeeping only; the engine adds its aggregate counters
    in the ``NoteRefusal`` effect handler.  A timeout deliberately books
    nothing on the record (D8: timeouts are an engine-health signal, not
    a property of the message).
    """
    if kind is RefusalKind.NACK or kind is RefusalKind.WATCHDOG:
        record.nacks += 1
    elif kind is RefusalKind.FAULT_NACK:
        record.fault_nacks += 1
        if record.first_fault_at is None:
            record.first_fault_at = now
    elif kind is RefusalKind.FAULT_KILL:
        record.fault_kills += 1
        if record.first_fault_at is None:
            record.first_fault_at = now

"""Declarative odd/even compaction handshake — paper Section 2.5.

The four-phase handshake of Figures 9/10 is expressed as a rule table.
Each :class:`HandshakeRule` covers one phase of the INC's switching FSM
and encodes the paper's rule for leaving it: a guard over the neighbour
status wires (LD/RD = the neighbours' OD bits, LC/RC = their OC bits,
Table 2) plus the actions taken when the guard holds.  The paper's five
rules::

    1. at reset, OD = OC = 0 for all INCs          (initial state)
    2. OD := 1  if ID = 1 and LC = 0 and RC = 0
    3. OC := 1  if OD = 1 and LD = 1 and RD = 1    (figure 10)
    4. OD := 0  if OD = 1 and LC = 1 and RC = 1
    5. OC := 0  if OC = 1 and LD = 0 and RD = 0

``ID`` ("own datapaths switched") is modelled by the WORK step: the INC
performs its compaction moves as the first action of each cycle, then
raises ``ID`` implicitly by moving to the rule-2 phase.

:class:`repro.core.cycles.CycleController` executes this table one rule
evaluation per local clock edge; :mod:`repro.protocol.explore` walks the
same table exhaustively to machine-check Lemma 1 (neighbour cycle skew
never exceeds one).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional, Tuple


class HandshakePhase(enum.Enum):
    """The four switching states of Figure 9 (plus the work step)."""

    WORK = "work"              # perform this cycle's datapath switches
    ASSERT_OD = "assert_od"    # rule 2: wait LC = RC = 0, then OD := 1
    SWITCH_CYCLE = "switch"    # rule 3: wait LD = RD = 1, then OC := 1
    CLEAR_OD = "clear_od"      # rule 4: wait LC = RC = 1, then OD := 0
    CLEAR_OC = "clear_oc"      # rule 5: wait LD = RD = 0, then OC := 0


class HandshakeState(NamedTuple):
    """Pure snapshot of one INC's handshake FSM (for table replay)."""

    phase: HandshakePhase
    od: bool
    oc: bool


class NeighbourBits(NamedTuple):
    """One neighbour's status wires as seen across the ring (Table 2)."""

    od: bool  # LD or RD
    oc: bool  # LC or RC


@dataclass(frozen=True)
class HandshakeRule:
    """One row of the handshake table: guard and actions for one phase.

    ``requires_od`` / ``requires_oc`` constrain *both* neighbours' bits
    (``None`` = don't care); ``sets_od`` / ``sets_oc`` assign the INC's
    own bits when the guard holds.  At most one rule applies per phase,
    so the table is deterministic by construction.
    """

    rule: int                        # paper rule number (0 = work step)
    phase: HandshakePhase
    requires_od: Optional[bool]      # guard on LD and RD
    requires_oc: Optional[bool]      # guard on LC and RC
    sets_od: Optional[bool]
    sets_oc: Optional[bool]
    advances_cycle: bool
    does_work: bool
    next_phase: HandshakePhase


_P = HandshakePhase

HANDSHAKE_TABLE: Tuple[HandshakeRule, ...] = (
    # The work step: datapath switches for this cycle, then raise ID.
    HandshakeRule(0, _P.WORK, None, None, None, None,
                  advances_cycle=False, does_work=True,
                  next_phase=_P.ASSERT_OD),
    # Rule 2: OD := 1 once both neighbours have dropped their OC.
    HandshakeRule(2, _P.ASSERT_OD, None, False, True, None,
                  advances_cycle=False, does_work=False,
                  next_phase=_P.SWITCH_CYCLE),
    # Rule 3 (Figure 10): OC := 1 — and the local cycle count advances —
    # once both neighbours have asserted OD.
    HandshakeRule(3, _P.SWITCH_CYCLE, True, None, None, True,
                  advances_cycle=True, does_work=False,
                  next_phase=_P.CLEAR_OD),
    # Rule 4: OD := 0 once both neighbours have asserted OC.
    HandshakeRule(4, _P.CLEAR_OD, None, True, False, None,
                  advances_cycle=False, does_work=False,
                  next_phase=_P.CLEAR_OC),
    # Rule 5: OC := 0 once both neighbours have dropped OD.
    HandshakeRule(5, _P.CLEAR_OC, False, None, None, False,
                  advances_cycle=False, does_work=False,
                  next_phase=_P.WORK),
)

#: Phase -> governing rule.  Exactly one rule per phase (asserted below).
RULE_OF_PHASE: Dict[HandshakePhase, HandshakeRule] = {
    rule.phase: rule for rule in HANDSHAKE_TABLE
}
assert len(RULE_OF_PHASE) == len(HANDSHAKE_TABLE)

#: Rule 1 (reset): every INC starts in WORK with OD = OC = 0.
RESET_STATE = HandshakeState(_P.WORK, od=False, oc=False)

#: The INC's own (OD, OC) bits are a function of its phase — the table
#: forms a Gray-code-like loop (0,0) -> (1,0) -> (1,1) -> (0,1) -> (0,0).
#: Explorers use this to check bit/phase consistency.
BITS_OF_PHASE: Dict[HandshakePhase, Tuple[bool, bool]] = {
    _P.WORK: (False, False),
    _P.ASSERT_OD: (False, False),
    _P.SWITCH_CYCLE: (True, False),
    _P.CLEAR_OD: (True, True),
    _P.CLEAR_OC: (False, True),
}


def guard_satisfied(rule: HandshakeRule, left: NeighbourBits,
                    right: NeighbourBits) -> bool:
    """True when both neighbours' wires satisfy the rule's guard."""
    if rule.requires_od is not None and not (
            left.od == rule.requires_od == right.od):
        return False
    if rule.requires_oc is not None and not (
            left.oc == rule.requires_oc == right.oc):
        return False
    return True


def handshake_step(
    state: HandshakeState, left: NeighbourBits, right: NeighbourBits,
) -> Tuple[HandshakeState, Optional[HandshakeRule]]:
    """Evaluate one clock edge of the table, purely.

    Returns the successor state and the rule that fired (``None`` when
    the guard held the FSM in place).  ``advances_cycle`` / ``does_work``
    on the returned rule tell the caller which side effects to run.
    """
    rule = RULE_OF_PHASE[state.phase]
    if not guard_satisfied(rule, left, right):
        return state, None
    od = state.od if rule.sets_od is None else rule.sets_od
    oc = state.oc if rule.sets_oc is None else rule.sets_oc
    return HandshakeState(rule.next_phase, od, oc), rule

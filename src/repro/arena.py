"""Cross-topology arena: the paper's Section 3 race, made a harness.

One workload — realised as a zero-time
:class:`~repro.traffic.arrivals.ArrivalSchedule` by
:func:`repro.traffic.patterns.pattern_batch` — is replayed, identically,
across any set of :mod:`repro.networks` topologies, each sized "fairly"
for the same node count and wire budget by
:func:`repro.networks.registry.build_network`.  The report ranks the
architectures per pattern the way Figure-style comparisons in the paper
do (makespan, normalised against the RMB row), in the spirit of
pyCircuit's ``fm16_system.py`` side-by-side.

Every message object is rebuilt per network so no state can leak
between competitors; results are deterministic in the seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.analysis.tables import render_comparison
from repro.core.flits import Message
from repro.errors import TopologyError, WorkloadError
from repro.networks.base import BatchResult
from repro.networks.registry import (
    EXTRA_NETWORKS,
    PAPER_NETWORKS,
    build_network,
    is_known_network,
)
from repro.traffic.arrivals import ArrivalSchedule
from repro.traffic.kpermutation import max_ring_load
from repro.traffic.patterns import (
    TrafficPattern,
    batch_pairs,
    make_pattern,
    pattern_batch,
)

#: The default line-up: the paper's own Section 3 set plus the
#: conventional multibus it contrasts against in the concluding remark.
DEFAULT_NETWORKS = PAPER_NETWORKS + ("multibus",)


@dataclass
class ArenaSection:
    """One pattern's race: the identical schedule across every network."""

    pattern: TrafficPattern
    schedule: ArrivalSchedule
    results: list[BatchResult]
    peak_ring_load: int

    def rows(self) -> list[dict[str, Any]]:
        return [result.row() for result in self.results]

    def ordering(self) -> list[str]:
        """Network names from fastest to slowest makespan."""
        return [result.network for result in
                sorted(self.results, key=lambda r: (r.makespan, r.network))]

    def result_for(self, network: str) -> BatchResult:
        for result in self.results:
            if result.network == network:
                return result
        raise WorkloadError(
            f"network {network!r} was not raced in this section"
        )

    def title(self) -> str:
        return (f"{self.pattern.spec}: {len(self.schedule)} messages, "
                f"peak ring load {self.peak_ring_load}")


@dataclass
class ArenaReport:
    """All sections of one arena run plus the shared geometry."""

    nodes: int
    lanes: int
    data_flits: int
    seed: int
    rounds: int
    networks: tuple[str, ...]
    sections: list[ArenaSection]

    def render(self) -> str:
        """The full report as deterministic text (golden-fixture stable)."""
        parts = [
            f"arena: N={self.nodes} k={self.lanes} flits={self.data_flits} "
            f"seed={self.seed} rounds={self.rounds}",
            f"networks: {', '.join(self.networks)}",
        ]
        for section in self.sections:
            parts.append("")
            parts.append(render_comparison(
                section.title(), section.rows(),
                baseline_key="rmb", value_key="makespan"))
            parts.append(f"ordering: {' < '.join(section.ordering())}")
        return "\n".join(parts)

    def summary(self) -> dict[str, Any]:
        """JSON-able record (the CI arena-smoke artifact shape)."""
        return {
            "nodes": self.nodes,
            "lanes": self.lanes,
            "data_flits": self.data_flits,
            "seed": self.seed,
            "rounds": self.rounds,
            "networks": list(self.networks),
            "sections": [
                {
                    "pattern": section.pattern.spec,
                    "messages": len(section.schedule),
                    "peak_ring_load": section.peak_ring_load,
                    "ordering": section.ordering(),
                    "rows": section.rows(),
                }
                for section in self.sections
            ],
        }


def _fresh_messages(schedule: ArrivalSchedule) -> list[Message]:
    """Rebuild the batch so each competitor gets untouched objects."""
    return [dataclasses.replace(message)
            for message in schedule.messages()]


def run_arena(
    nodes: int,
    lanes: int,
    patterns: Sequence[str],
    networks: Sequence[str] = DEFAULT_NETWORKS,
    data_flits: int = 16,
    seed: int = 0,
    rounds: int = 1,
    max_ticks: float = 2_000_000.0,
    prebuilt: Optional[dict[str, ArrivalSchedule]] = None,
) -> ArenaReport:
    """Race every pattern's schedule across every named network.

    Args:
        patterns: pattern specs (see
            :func:`repro.traffic.patterns.make_pattern`).
        networks: registry names; unknown names raise before any run.
        rounds: batch rounds per pattern (k-permutations are usually
            raced over several rounds so segment reuse matters).
        prebuilt: optional spec -> schedule overrides, letting callers
            replay an externally built :class:`ArrivalSchedule` (e.g. a
            recorded arrival trace) through the identical line-up.
    """
    if not patterns:
        raise WorkloadError("arena needs at least one pattern")
    if not networks:
        raise WorkloadError("arena needs at least one network")
    unknown = [name for name in networks if not is_known_network(name)]
    if unknown:
        raise TopologyError(
            f"unknown arena networks {unknown}; "
            f"choose from {arena_network_choices()} "
            f"(hier also accepts an explicit split, e.g. hier:4x8)"
        )
    sections = []
    for spec in patterns:
        pattern = make_pattern(spec, nodes, k=lanes, seed=seed)
        if prebuilt is not None and spec in prebuilt:
            schedule = prebuilt[spec]
        else:
            schedule = pattern_batch(pattern, data_flits=data_flits,
                                     seed=seed, rounds=rounds)
        if len(schedule) == 0:
            raise WorkloadError(
                f"pattern {spec!r} produced no messages at N={nodes}"
            )
        results = []
        for name in networks:
            network = build_network(name, nodes, lanes, seed=seed)
            try:
                result = network.route_batch(
                    _fresh_messages(schedule), max_ticks=max_ticks)
            except TopologyError as exc:
                raise TopologyError(
                    f"network {name!r} cannot race at N={nodes}: {exc}"
                ) from exc
            results.append(result)
        sections.append(ArenaSection(
            pattern=pattern,
            schedule=schedule,
            results=results,
            peak_ring_load=max_ring_load(
                batch_pairs(schedule.messages()), nodes),
        ))
    return ArenaReport(
        nodes=nodes, lanes=lanes, data_flits=data_flits, seed=seed,
        rounds=rounds, networks=tuple(networks), sections=sections)


def arena_network_choices() -> list[str]:
    """Every registry name the arena accepts (CLI help)."""
    return sorted(PAPER_NETWORKS + EXTRA_NETWORKS)

"""Grid-composed RMB fabrics (paper Section 4 future work, realised)."""

from repro.grid.lattice import JourneyRecord, RMBLattice
from repro.grid.rmb_grid import GridRecord, RMBGrid

__all__ = ["GridRecord", "JourneyRecord", "RMBGrid", "RMBLattice"]

"""n-dimensional lattices of RMB rings — the full "2- and 3-D grid
connected computers" direction of paper Section 4.

Generalises :class:`~repro.grid.rmb_grid.RMBGrid`: a processor lattice of
shape ``(s_0, ..., s_{n-1})`` where every axis-aligned *line* (fix all
coordinates but one) is its own RMB ring.  A node belongs to ``n`` rings.
Messages travel dimension-ordered: one ring leg per differing coordinate,
with a store-and-forward hop at every turn.

For ``n = 2`` this is exactly the grid; ``n = 3`` is the paper's 3-D
case.  Ring sizes inherit the RMB's even-and-at-least-4 requirement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.config import RMBConfig
from repro.core.flits import Message, MessageRecord
from repro.core.network import RMBRing
from repro.errors import ConfigurationError, ProtocolError, RoutingError
from repro.sim.kernel import Simulator
from repro.sim.monitor import Tally


@dataclass
class JourneyRecord:
    """Lifecycle of one message across its dimension-ordered ring legs."""

    message_id: int
    source: tuple[int, ...]
    destination: tuple[int, ...]
    data_flits: int
    created_at: float
    dimensions_to_cross: list[int] = field(default_factory=list)
    legs: list[MessageRecord] = field(default_factory=list)
    completed_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    @property
    def legs_total(self) -> int:
        return len(self.dimensions_to_cross)

    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at


class RMBLattice:
    """An n-dimensional lattice of RMB rings.

    Args:
        shape: processors per dimension; every entry even and >= 4.
        lanes: lane count for every ring.
        base_config: optional parameter template (cycle period, retry
            policy, ...); ``nodes``/``lanes`` are overridden per ring.
        seed: root seed.
    """

    def __init__(
        self,
        shape: Sequence[int],
        lanes: int,
        base_config: Optional[RMBConfig] = None,
        seed: int = 0,
        check_invariants: bool = False,
    ) -> None:
        shape = tuple(shape)
        if len(shape) < 1:
            raise ConfigurationError("lattice needs at least one dimension")
        for size in shape:
            if size < 4 or size % 2:
                raise ConfigurationError(
                    f"every lattice dimension must be even and >= 4, "
                    f"got {shape}"
                )
        self.shape = shape
        self.lanes = lanes
        self.sim = Simulator()
        template = base_config if base_config is not None else \
            RMBConfig(nodes=max(shape), lanes=lanes, cycle_period=2.0)
        self.rings: dict[tuple, RMBRing] = {}
        ring_seed = seed
        for dim, size in enumerate(shape):
            other_axes = [range(extent) for axis, extent in enumerate(shape)
                          if axis != dim]
            for fixed in itertools.product(*other_axes):
                key = (dim, fixed)
                ring_seed += 1
                ring = RMBRing(
                    template.with_overrides(nodes=size, lanes=lanes),
                    seed=ring_seed, sim=self.sim,
                    name=f"d{dim}@{fixed}",
                    check_invariants=check_invariants,
                    trace_kinds=set(),
                )
                ring.routing.on_complete = self._leg_completed
                self.rings[key] = ring
        self.records: dict[int, JourneyRecord] = {}
        self._leg_index: dict[int, tuple[JourneyRecord, int]] = {}
        self._leg_counter = 0
        self.turn_latency = Tally("turn-wait")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> int:
        total = 1
        for size in self.shape:
            total *= size
        return total

    def node_id(self, coords: Sequence[int]) -> int:
        node = 0
        for size, coordinate in zip(self.shape, coords):
            node = node * size + coordinate
        return node

    def coordinates(self, node: int) -> tuple[int, ...]:
        coords = []
        for size in reversed(self.shape):
            coords.append(node % size)
            node //= size
        return tuple(reversed(coords))

    def ring_for(self, dim: int, coords: Sequence[int]) -> RMBRing:
        """The ring running along ``dim`` through the given coordinates."""
        fixed = tuple(coordinate for axis, coordinate in enumerate(coords)
                      if axis != dim)
        return self.rings[(dim, fixed)]

    # ------------------------------------------------------------------
    # Journeys
    # ------------------------------------------------------------------
    def submit(self, message_id: int, source: int, destination: int,
               data_flits: int) -> JourneyRecord:
        if message_id in self.records:
            raise RoutingError(f"duplicate journey id {message_id}")
        if not (0 <= source < self.nodes and 0 <= destination < self.nodes):
            raise RoutingError("endpoints outside the lattice")
        if source == destination:
            raise RoutingError("lattice carries no self-messages")
        src = self.coordinates(source)
        dst = self.coordinates(destination)
        record = JourneyRecord(
            message_id=message_id, source=src, destination=dst,
            data_flits=data_flits, created_at=self.sim.now,
            dimensions_to_cross=[dim for dim in range(len(self.shape))
                                 if src[dim] != dst[dim]],
        )
        self.records[message_id] = record
        self._launch_next_leg(record, position=list(src))
        return record

    def _launch_next_leg(self, record: JourneyRecord,
                         position: list[int]) -> None:
        leg_number = len(record.legs)
        dim = record.dimensions_to_cross[leg_number]
        ring = self.ring_for(dim, position)
        self._leg_counter += 1
        # Leg message ids are globally unique across all rings, so the
        # completion callback can resolve its journey by id alone.
        message = Message(
            message_id=self._leg_counter,
            source=position[dim],
            destination=record.destination[dim],
            data_flits=record.data_flits,
            created_at=self.sim.now,
        )
        leg_record = ring.submit(message)
        record.legs.append(leg_record)
        self._leg_index[message.message_id] = (record, leg_number)

    def _leg_completed(self, leg_record: MessageRecord) -> None:
        entry = self._leg_index.pop(leg_record.message.message_id, None)
        if entry is None:  # pragma: no cover - every leg is registered
            raise ProtocolError("completion for an unknown lattice leg")
        record, leg_number = entry
        if leg_number + 1 == record.legs_total:
            record.completed_at = self.sim.now
            return
        # Compute the position after this leg and forward.
        position = list(record.source)
        for done in range(leg_number + 1):
            dim = record.dimensions_to_cross[done]
            position[dim] = record.destination[dim]
        self.turn_latency.add(self.sim.now - record.created_at)
        self._launch_next_leg(record, position)

    # ------------------------------------------------------------------
    # Execution / statistics
    # ------------------------------------------------------------------
    def pending(self) -> int:
        unfinished = sum(1 for record in self.records.values()
                         if not record.finished)
        in_rings = sum(ring.routing.pending()
                       for ring in self.rings.values())
        return max(unfinished, in_rings)

    def run(self, ticks: float) -> None:
        self.sim.run_ticks(ticks)

    def drain(self, max_ticks: float = 4_000_000.0) -> float:
        start = self.sim.now
        while self.pending() > 0:
            if self.sim.now - start > max_ticks:
                raise ProtocolError(
                    f"lattice failed to drain within {max_ticks} ticks"
                )
            self.sim.run_ticks(32)
        return self.sim.now - start

    def completed(self) -> int:
        return sum(1 for record in self.records.values() if record.finished)

    def latency_tally(self) -> Tally:
        tally = Tally("lattice-latency")
        for record in self.records.values():
            latency = record.latency()
            if latency is not None:
                tally.add(latency)
        return tally

    def describe(self) -> str:
        shape = "x".join(str(size) for size in self.shape)
        return (f"rmb-lattice({shape}, k={self.lanes}, "
                f"{len(self.rings)} rings)")

"""A 2-D grid of RMB rings — the paper's Section 4 future-work direction
"the design of reconfigurable multiple bus systems for 2- and 3-D grid
connected computers", realised.

Topology: a ``rows x cols`` processor array.  Every row is one RMB ring
over its ``cols`` nodes and every column is one RMB ring over its
``rows`` nodes; a node belongs to exactly one row ring and one column
ring (the classic ring-mesh composition).  All rings share a single
simulator, so the whole fabric advances in one time base.

Routing is dimension-ordered: a message first rides its source's *row*
ring to the destination column, is received by the turning node's PE, and
is then re-injected on that node's *column* ring to the destination row
(single-leg when the endpoints share a row or column).  The store-and-
forward hop at the turn is the honest cost of composing circuit-switched
rings — exactly the design question the paper left open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import RMBConfig
from repro.core.flits import Message, MessageRecord
from repro.core.network import RMBRing
from repro.errors import ConfigurationError, ProtocolError, RoutingError
from repro.sim.kernel import Simulator
from repro.sim.monitor import Tally


@dataclass
class GridRecord:
    """Lifecycle of one grid message across its (up to two) ring legs."""

    message_id: int
    source: tuple[int, int]
    destination: tuple[int, int]
    data_flits: int
    created_at: float
    legs_total: int = 0
    legs_done: int = 0
    first_leg: Optional[MessageRecord] = None
    second_leg: Optional[MessageRecord] = None
    completed_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at


class RMBGrid:
    """A rows x cols fabric of row and column RMB rings.

    Args:
        rows / cols: grid dimensions; both must be even (each ring obeys
            the RMB's even-node-count requirement) and >= 4.
        lanes: lane count used by every ring.
        base_config: optional template for ring parameters other than
            ``nodes``/``lanes`` (cycle period, retry policy, ...).
        seed: root seed; each ring derives an independent stream.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        lanes: int,
        base_config: Optional[RMBConfig] = None,
        seed: int = 0,
        check_invariants: bool = True,
    ) -> None:
        if rows < 4 or cols < 4 or rows % 2 or cols % 2:
            raise ConfigurationError(
                f"grid dimensions must be even and >= 4, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.lanes = lanes
        self.sim = Simulator()
        template = base_config if base_config is not None else \
            RMBConfig(nodes=max(rows, cols), lanes=lanes, cycle_period=2.0)
        self.row_rings = [
            RMBRing(template.with_overrides(nodes=cols, lanes=lanes),
                    seed=seed * 1009 + row, sim=self.sim,
                    name=f"row{row}", check_invariants=check_invariants,
                    trace_kinds=set())
            for row in range(rows)
        ]
        self.col_rings = [
            RMBRing(template.with_overrides(nodes=rows, lanes=lanes),
                    seed=seed * 2003 + col, sim=self.sim,
                    name=f"col{col}", check_invariants=check_invariants,
                    trace_kinds=set())
            for col in range(cols)
        ]
        for ring in self.row_rings + self.col_rings:
            ring.routing.on_complete = self._leg_completed
        self.records: dict[int, GridRecord] = {}
        # Ring-local message id -> (grid record, which leg) bookkeeping.
        self._leg_index: dict[int, tuple[GridRecord, int]] = {}
        self._next_leg_id = 0
        self.turn_latency = Tally("turn-wait")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> int:
        return self.rows * self.cols

    def node_id(self, row: int, col: int) -> int:
        return row * self.cols + col

    def position(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    # ------------------------------------------------------------------
    # Submission and leg chaining
    # ------------------------------------------------------------------
    def submit(self, message_id: int, source: int, destination: int,
               data_flits: int) -> GridRecord:
        """Offer a message between two grid nodes (global node ids)."""
        if message_id in self.records:
            raise RoutingError(f"duplicate grid message id {message_id}")
        if not (0 <= source < self.nodes and 0 <= destination < self.nodes):
            raise RoutingError(
                f"endpoints ({source}, {destination}) outside the "
                f"{self.rows}x{self.cols} grid"
            )
        if source == destination:
            raise RoutingError("grid carries no self-messages")
        src = self.position(source)
        dst = self.position(destination)
        record = GridRecord(
            message_id=message_id, source=src, destination=dst,
            data_flits=data_flits, created_at=self.sim.now,
        )
        record.legs_total = 1 if (src[0] == dst[0] or src[1] == dst[1]) else 2
        self.records[message_id] = record
        if src[0] == dst[0]:
            # Same row: a single row-ring leg.
            self._launch_leg(record, leg=record.legs_total,
                             ring=self.row_rings[src[0]],
                             ring_source=src[1], ring_destination=dst[1])
        elif src[1] == dst[1]:
            # Same column: a single column-ring leg.
            self._launch_leg(record, leg=record.legs_total,
                             ring=self.col_rings[src[1]],
                             ring_source=src[0], ring_destination=dst[0])
        else:
            # Row first (to the destination column), column second.
            self._launch_leg(record, leg=1,
                             ring=self.row_rings[src[0]],
                             ring_source=src[1], ring_destination=dst[1])
        return record

    def _launch_leg(self, record: GridRecord, leg: int, ring: RMBRing,
                    ring_source: int, ring_destination: int) -> None:
        leg_id = self._next_leg_id
        self._next_leg_id += 1
        message = Message(
            message_id=leg_id, source=ring_source,
            destination=ring_destination, data_flits=record.data_flits,
            created_at=self.sim.now,
        )
        leg_record = ring.submit(message)
        if leg == 1 and record.legs_total == 2:
            record.first_leg = leg_record
        else:
            record.second_leg = leg_record
        self._leg_index[leg_id] = (record, leg)

    def _leg_completed(self, leg_record: MessageRecord) -> None:
        entry = self._leg_index.pop(leg_record.message.message_id, None)
        if entry is None:  # pragma: no cover - ids are always registered
            raise ProtocolError("completion for an unknown grid leg")
        record, leg = entry
        record.legs_done += 1
        if record.legs_done == record.legs_total:
            record.completed_at = self.sim.now
            return
        # The turning node (destination row of leg 1's ring is the source
        # row of leg 2) forwards onto its column ring.
        turn_row = record.source[0]
        turn_col = record.destination[1]
        self.turn_latency.add(self.sim.now - record.created_at)
        self._launch_leg(record, leg=2,
                         ring=self.col_rings[turn_col],
                         ring_source=turn_row,
                         ring_destination=record.destination[0])

    # ------------------------------------------------------------------
    # Execution and statistics
    # ------------------------------------------------------------------
    def pending(self) -> int:
        queued = sum(ring.routing.pending()
                     for ring in self.row_rings + self.col_rings)
        unfinished = sum(1 for record in self.records.values()
                         if not record.finished)
        return max(queued, unfinished)

    def run(self, ticks: float) -> None:
        self.sim.run_ticks(ticks)

    def drain(self, max_ticks: float = 2_000_000.0) -> float:
        start = self.sim.now
        while self.pending() > 0:
            if self.sim.now - start > max_ticks:
                raise ProtocolError(
                    f"grid failed to drain within {max_ticks} ticks; "
                    f"{self.pending()} journeys outstanding"
                )
            self.sim.run_ticks(32)
        return self.sim.now - start

    def latency_tally(self) -> Tally:
        """Latency distribution over completed grid journeys."""
        tally = Tally("grid-latency")
        for record in self.records.values():
            latency = record.latency()
            if latency is not None:
                tally.add(latency)
        return tally

    def completed(self) -> int:
        return sum(1 for record in self.records.values() if record.finished)

    def describe(self) -> str:
        return (f"rmb-grid({self.rows}x{self.cols}, k={self.lanes}, "
                f"{self.rows + self.cols} rings)")

"""Binary hypercube with e-cube (dimension-order) wormhole routing.

Paper Section 3.1: "An n-cube can be constructed recursively ...
point-to-point routing is straightforward using an e-cube routing."
E-cube resolves address bits lowest-first, which is deadlock-free because
channel dependencies only ever ascend in dimension.
"""

from __future__ import annotations

from repro.core.flits import Message
from repro.errors import RoutingError, TopologyError
from repro.networks.wormhole import Channel, WormholeEngine


def is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def hypercube_channels(dimension: int,
                       multiplicities: dict[int, int] | None = None
                       ) -> list[Channel]:
    """All directed hypercube channels for ``2**dimension`` nodes.

    Args:
        dimension: cube dimension ``n``.
        multiplicities: optional per-dimension link multiplicity override
            (used by the EHC/GFC variants); default 1 everywhere.
    """
    if dimension < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dimension}")
    nodes = 1 << dimension
    channels = []
    for node in range(nodes):
        for dim in range(dimension):
            neighbour = node ^ (1 << dim)
            width = 1
            if multiplicities is not None:
                width = multiplicities.get(dim, 1)
            channels.append(
                Channel(source=node, sink=neighbour, multiplicity=width,
                        label=f"dim{dim}")
            )
    return channels


def ecube_route(engine: WormholeEngine, message: Message, node: int) -> int:
    """Resolve the lowest differing address bit first."""
    difference = node ^ message.destination
    if difference == 0:
        raise RoutingError(
            f"e-cube routing called at the destination node {node}"
        )
    dim = (difference & -difference).bit_length() - 1
    neighbour = node ^ (1 << dim)
    return engine.channel_between(node, neighbour).index


class HypercubeNetwork(WormholeEngine):
    """An ``n``-cube with e-cube wormhole routing."""

    def __init__(self, nodes: int) -> None:
        if not is_power_of_two(nodes):
            raise TopologyError(
                f"hypercube size must be a power of two, got {nodes}"
            )
        dimension = nodes.bit_length() - 1
        super().__init__(
            nodes,
            hypercube_channels(dimension),
            ecube_route,
            name="hypercube",
        )
        self.dimension = dimension

"""Common interface for the comparison networks of paper Section 3.

Every network — the RMB itself, hypercube, EHC, fat-tree, mesh, the
conventional arbitrated multiple bus, and the ideal crossbar — implements
:class:`ComparisonNetwork`, so the permutation-race benchmarks treat them
uniformly: submit a batch of messages (typically a permutation), run to
completion, and read a :class:`BatchResult`.

Time bases are aligned across networks: one tick moves one flit across one
channel/segment, which is the paper's own normalisation (it assumes "the
cost of a cross point and the cost of a link are similar in different
architectures").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.flits import Message
from repro.sim.monitor import Tally, percentile


@dataclass
class BatchResult:
    """Outcome of routing one message batch to completion.

    Attributes:
        network: reporting network's name.
        nodes: node count.
        makespan: ticks from batch start until the last delivery.
        latencies: per-message delivery latencies (creation to last flit).
        delivered: messages delivered (equals the batch size on success).
    """

    network: str
    nodes: int
    makespan: float
    latencies: list[float] = field(default_factory=list)
    delivered: int = 0

    @property
    def mean_latency(self) -> float:
        tally = Tally()
        for value in self.latencies:
            tally.add(value)
        return tally.mean

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    def latency_percentile(self, fraction: float) -> float:
        if not self.latencies:
            return 0.0
        return percentile(sorted(self.latencies), fraction)

    def row(self) -> dict[str, float | str]:
        """Flat dictionary for table rendering."""
        return {
            "network": self.network,
            "nodes": self.nodes,
            "delivered": self.delivered,
            "makespan": self.makespan,
            "mean_latency": round(self.mean_latency, 2),
            "max_latency": self.max_latency,
        }


class ComparisonNetwork(abc.ABC):
    """A network that can route a finite batch of messages to completion."""

    #: Short identifier used in tables ("rmb", "hypercube", ...).
    name: str = "network"

    def __init__(self, nodes: int) -> None:
        self.nodes = nodes

    @abc.abstractmethod
    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        """Deliver every message; return timing statistics.

        Implementations must raise :class:`repro.errors.ProtocolError` (or
        a subclass) rather than loop forever if the batch cannot drain
        within ``max_ticks``.
        """

    def describe(self) -> str:
        return f"{self.name}(N={self.nodes})"


def make_batch(pairs: Sequence[tuple[int, int]], data_flits: int,
               start_id: int = 0) -> list[Message]:
    """Build a message batch from (source, destination) pairs.

    Pairs with ``source == destination`` are skipped — a fixed point of a
    permutation needs no communication on any of the compared networks.
    """
    messages = []
    next_id = start_id
    for source, destination in pairs:
        if source == destination:
            continue
        messages.append(
            Message(message_id=next_id, source=source,
                    destination=destination, data_flits=data_flits)
        )
        next_id += 1
    return messages


def permutation_pairs(permutation: Sequence[int]) -> list[tuple[int, int]]:
    """Interpret ``permutation[i]`` as the destination of node ``i``."""
    return [(source, destination)
            for source, destination in enumerate(permutation)]

"""Ideal full crossbar — the contention-floor reference network.

Every source owns a dedicated path to every destination; the only conflict
is at the destination's single receive port.  No real machine of the
paper's era could build this at scale (its cost model is the reason the
paper exists), but it bounds from below what any of the compared networks
can achieve, which makes it a useful calibration row in the race tables.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.core.flits import Message
from repro.errors import ProtocolError
from repro.networks.base import BatchResult, ComparisonNetwork


class CrossbarNetwork(ComparisonNetwork):
    """An ``N x N`` non-blocking crossbar with single-port nodes."""

    name = "crossbar"

    def __init__(self, nodes: int, port_latency: float = 1.0) -> None:
        super().__init__(nodes)
        self.port_latency = port_latency

    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        result = BatchResult(self.name, self.nodes, 0.0)
        # Per-source FIFO of pending messages (one TX port per node).
        by_source: dict[int, deque[Message]] = {}
        for message in sorted(messages, key=lambda m: m.message_id):
            by_source.setdefault(message.source, deque()).append(message)
        tx_free_at = {source: 0.0 for source in by_source}
        rx_free_at: dict[int, float] = {}
        now = 0.0
        remaining = sum(len(queue) for queue in by_source.values())
        while remaining > 0:
            if now > max_ticks:
                raise ProtocolError(
                    f"crossbar failed to drain within {max_ticks} ticks"
                )
            for source, queue in by_source.items():
                if not queue or tx_free_at[source] > now:
                    continue
                head = queue[0]
                if rx_free_at.get(head.destination, 0.0) > now:
                    continue
                queue.popleft()
                remaining -= 1
                finish = now + head.total_flits + self.port_latency
                tx_free_at[source] = finish
                rx_free_at[head.destination] = finish
                result.delivered += 1
                result.latencies.append(finish)
            now += 1.0
        result.makespan = max(result.latencies) if result.latencies else 0.0
        return result

"""2-D mesh with XY (dimension-order) wormhole routing.

Paper Section 3.1: "The mesh architecture is another attractive structure.
With degree 4 nodes, any arbitrary size structure can be derived.  The
layout is straightforward and routing remains simple."  XY routing is the
standard deadlock-free choice: resolve the X offset completely, then Y.
"""

from __future__ import annotations

import math

from repro.core.flits import Message
from repro.errors import RoutingError, TopologyError
from repro.networks.wormhole import Channel, WormholeEngine


def square_side(nodes: int) -> int:
    """Side length for a square mesh of ``nodes`` (must be a square)."""
    side = math.isqrt(nodes)
    if side * side != nodes:
        raise TopologyError(
            f"mesh node count must be a perfect square, got {nodes}"
        )
    return side


def mesh_channels(rows: int, cols: int,
                  multiplicity: int = 1) -> list[Channel]:
    """Bidirectional nearest-neighbour channels of a ``rows x cols`` mesh."""
    if rows < 2 or cols < 2:
        raise TopologyError(f"mesh needs >= 2x2, got {rows}x{cols}")
    channels = []

    def node(row: int, col: int) -> int:
        return row * cols + col

    for row in range(rows):
        for col in range(cols):
            here = node(row, col)
            if col + 1 < cols:
                right = node(row, col + 1)
                channels.append(Channel(here, right, multiplicity, "east"))
                channels.append(Channel(right, here, multiplicity, "west"))
            if row + 1 < rows:
                below = node(row + 1, col)
                channels.append(Channel(here, below, multiplicity, "south"))
                channels.append(Channel(below, here, multiplicity, "north"))
    return channels


class MeshNetwork(WormholeEngine):
    """Square 2-D mesh with XY wormhole routing.

    Args:
        nodes: total node count (perfect square).
        multiplicity: wires per channel; the paper's k-permutation scaling
            of the mesh widens each dimension by sqrt(k), modelled here as
            channel multiplicity.
    """

    def __init__(self, nodes: int, multiplicity: int = 1) -> None:
        side = square_side(nodes)
        self.rows = side
        self.cols = side
        super().__init__(
            nodes,
            mesh_channels(side, side, multiplicity),
            self._xy_route,
            name="mesh",
        )

    def coordinates(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def _xy_route(self, engine: WormholeEngine, message: Message,
                  node: int) -> int:
        row, col = self.coordinates(node)
        dest_row, dest_col = self.coordinates(message.destination)
        if col != dest_col:
            step = 1 if dest_col > col else -1
            neighbour = row * self.cols + (col + step)
        elif row != dest_row:
            step = 1 if dest_row > row else -1
            neighbour = (row + step) * self.cols + col
        else:
            raise RoutingError(f"XY routing called at destination {node}")
        return engine.channel_between(node, neighbour).index

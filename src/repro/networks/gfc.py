"""Generalised folding cube (GFC) — Choi & Somani, paper reference [3].

The GFC folds several hypercube nodes into one richly-connected multi-
processor node and widens every dimension's links by the folding factor,
recovering permutation-embedding capability with fewer long wires.  The
RMB paper uses "a scaled GFC structure with degree d ... so that the GFC
has [enough] links in each dimension" as the fair hypercube-family
comparator for k-permutations.

Behaviourally we model a GFC(d, f) as a d-cube of super-nodes whose every
dimension has link multiplicity ``f``, with ``f`` processors folded into
each super-node.  Processor ``p`` lives in super-node ``p // f``;
intra-super-node traffic crosses a node-local crossbar modelled as an
extra unit-multiplicity self-loop-free local channel pair.
"""

from __future__ import annotations

from repro.core.flits import Message
from repro.errors import RoutingError, TopologyError
from repro.networks.hypercube import hypercube_channels, is_power_of_two
from repro.networks.wormhole import Channel, WormholeEngine


class GeneralizedFoldingCubeNetwork(WormholeEngine):
    """GFC over ``2**dimension`` super-nodes with folding factor ``fold``.

    Engine node ids: processors are ``0 .. fold * 2**dimension - 1``; the
    super-node of processor ``p`` is ``p // fold``.  Because the engine
    routes between processors, each processor attaches to its super-node's
    shared channel bundle; dimension channels connect super-node *ports*
    which we place at the first processor id of each super-node.
    """

    def __init__(self, super_nodes: int, fold: int = 2) -> None:
        if not is_power_of_two(super_nodes):
            raise TopologyError(
                f"GFC super-node count must be a power of two, got {super_nodes}"
            )
        if fold < 1:
            raise TopologyError(f"fold factor must be >= 1, got {fold}")
        self.fold = fold
        self.super_count = super_nodes
        dimension = super_nodes.bit_length() - 1
        self.dimension = dimension
        processors = super_nodes * fold
        channels: list[Channel] = []
        # Dimension channels between super-node anchors, widened by fold.
        for channel in hypercube_channels(dimension):
            channels.append(
                Channel(
                    source=self._anchor(channel.source),
                    sink=self._anchor(channel.sink),
                    multiplicity=fold,
                    label=channel.label,
                )
            )
        # Local channels between each processor and its super-node anchor.
        for processor in range(processors):
            anchor = self._anchor(processor // fold)
            if processor == anchor:
                continue
            channels.append(Channel(processor, anchor, multiplicity=1,
                                    label="local-up"))
            channels.append(Channel(anchor, processor, multiplicity=1,
                                    label="local-down"))
        super().__init__(processors, channels, self._route, name="gfc")

    def _anchor(self, super_node: int) -> int:
        """Engine node id hosting a super-node's routing port."""
        return super_node * self.fold

    def super_node_of(self, processor: int) -> int:
        return processor // self.fold

    def _route(self, engine: WormholeEngine, message: Message, node: int) -> int:
        destination = message.destination
        my_super = self.super_node_of(node)
        dest_super = self.super_node_of(destination)
        anchor = self._anchor(my_super)
        if my_super == dest_super:
            # Local delivery through the super-node crossbar.
            if node != anchor:
                return engine.channel_between(node, anchor, "local-up").index
            return engine.channel_between(anchor, destination,
                                          "local-down").index
        if node != anchor:
            return engine.channel_between(node, anchor, "local-up").index
        # e-cube between super-nodes, lowest differing bit first.
        difference = my_super ^ dest_super
        if difference == 0:  # pragma: no cover - excluded above
            raise RoutingError("GFC routing stuck at destination super-node")
        dim = (difference & -difference).bit_length() - 1
        next_anchor = self._anchor(my_super ^ (1 << dim))
        return engine.channel_between(anchor, next_anchor, f"dim{dim}").index

"""Fat tree with capacity-limited channels — Leiserson [6], paper Figure 11.

A complete binary fat tree over ``N`` processors.  The channel between a
node at distance ``i - 1`` from the processors and its parent at distance
``i`` has capacity (wire multiplicity) ``min(2**(i-1), k)`` in each
direction.  With ``k = N`` this is Leiserson's universal fat tree
(capacity ``2**i`` at distance ``i``); capping at ``k`` yields exactly the
paper's Figure 11 structure: processors grouped into ``N/k`` leaf clusters
that are complete fat trees internally, joined by ``k``-wide channels
above — the minimum fat tree supporting a ``k``-permutation.

Routing is up/down: ascend until the destination lies in the current
subtree, then descend.  Up channels are bundles; the engine grabs any free
sub-channel (the standard adaptive choice).  Up/down routing is
deadlock-free because every path uses up-channels strictly before
down-channels.
"""

from __future__ import annotations

from repro.core.flits import Message
from repro.errors import RoutingError, TopologyError
from repro.networks.hypercube import is_power_of_two
from repro.networks.wormhole import Channel, WormholeEngine


class FatTreeNetwork(WormholeEngine):
    """Binary fat tree over ``processors`` leaves with capacity cap ``k``.

    Engine node ids: ``0 .. N-1`` are processors; switch with heap index
    ``h`` (``1 <= h <= N - 1``, 1 = root) is engine node ``N + h - 1``.
    The heap index of processor ``p`` is ``N + p``.
    """

    def __init__(self, processors: int, k: int | None = None) -> None:
        if not is_power_of_two(processors) or processors < 2:
            raise TopologyError(
                f"fat tree size must be a power of two >= 2, got {processors}"
            )
        self.processors = processors
        self.k = processors if k is None else k
        if self.k < 1:
            raise TopologyError(f"capacity cap k must be >= 1, got {self.k}")
        channels = self._build_channels()
        super().__init__(
            processors + processors - 1,
            channels,
            self._route,
            name="fattree",
        )

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def _heap_of(self, node: int) -> int:
        """Heap index of an engine node (processor or switch)."""
        if node < self.processors:
            return self.processors + node
        return node - self.processors + 1

    def _engine_of(self, heap: int) -> int:
        """Engine node id of a heap index."""
        if heap >= self.processors:
            return heap - self.processors
        return self.processors + heap - 1

    def level_of(self, heap: int) -> int:
        """Distance from the processor level (processors are level 0)."""
        total_levels = self.processors.bit_length()  # root level = log2(N)
        return total_levels - heap.bit_length()

    def capacity(self, child_level: int) -> int:
        """Multiplicity of the channel from level ``child_level`` upward."""
        return min(1 << child_level, self.k)

    def _build_channels(self) -> list[Channel]:
        channels = []
        for heap in range(2, 2 * self.processors):
            child = self._engine_of(heap)
            parent = self._engine_of(heap // 2)
            width = self.capacity(self.level_of(heap))
            channels.append(Channel(child, parent, width, "up"))
            channels.append(Channel(parent, child, width, "down"))
        return channels

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _in_subtree(self, switch_heap: int, processor: int) -> bool:
        leaf = self.processors + processor
        while leaf > switch_heap:
            leaf //= 2
        return leaf == switch_heap

    def _route(self, engine: WormholeEngine, message: Message,
               node: int) -> int:
        heap = self._heap_of(node)
        destination = message.destination
        if node < self.processors:
            # Processor: single channel up to its parent switch.
            parent = self._engine_of(heap // 2)
            return engine.channel_between(node, parent, "up").index
        if self._in_subtree(heap, destination):
            # Descend towards the destination leaf.
            leaf = self.processors + destination
            child = leaf
            while child // 2 != heap:
                child //= 2
            return engine.channel_between(
                node, self._engine_of(child), "down"
            ).index
        if heap == 1:
            raise RoutingError(
                f"destination {destination} not under the root"
            )  # pragma: no cover - structurally impossible
        parent = self._engine_of(heap // 2)
        return engine.channel_between(node, parent, "up").index

    # ------------------------------------------------------------------
    # Structural accounting (cross-checked against analysis.cost)
    # ------------------------------------------------------------------
    def total_links(self) -> int:
        """Sum of channel multiplicities in one direction."""
        return sum(channel.multiplicity for channel in self.channels) // 2

    def links_per_level(self) -> dict[int, int]:
        """One-directional wire count per child level (Figure 11 check)."""
        per_level: dict[int, int] = {}
        for heap in range(2, 2 * self.processors):
            level = self.level_of(heap)
            per_level[level] = per_level.get(level, 0) + self.capacity(level)
        return per_level

"""Enhanced hypercube (EHC) — Choi & Somani, paper reference [4].

"A hypercube with duplicate pairs of links in any one dimension is defined
as the Enhanced Hyper Cube.  An n-dimensional EHC has 2^n nodes and each
node has n + 1 links.  The GFC and EHC networks can embed any arbitrary
permutation in circuit switching mode."

Behaviourally we model the EHC as a hypercube whose chosen dimension has
link multiplicity 2; e-cube routing is unchanged and a blocked head may
take either duplicate of the doubled dimension.  (The constructive
permutation-embedding algorithm of [4] needs global precomputation; our
simulator exercises the same hardware under on-line routing, which is the
regime the RMB paper compares against.)
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.hypercube import (
    ecube_route,
    hypercube_channels,
    is_power_of_two,
)
from repro.networks.wormhole import WormholeEngine


class EnhancedHypercubeNetwork(WormholeEngine):
    """Hypercube with one doubled dimension (degree ``n + 1`` per node)."""

    def __init__(self, nodes: int, doubled_dimension: int = 0) -> None:
        if not is_power_of_two(nodes):
            raise TopologyError(
                f"EHC size must be a power of two, got {nodes}"
            )
        dimension = nodes.bit_length() - 1
        if not 0 <= doubled_dimension < dimension:
            raise TopologyError(
                f"doubled dimension {doubled_dimension} outside 0..{dimension - 1}"
            )
        channels = hypercube_channels(
            dimension, multiplicities={doubled_dimension: 2}
        )
        super().__init__(nodes, channels, ecube_route, name="ehc")
        self.dimension = dimension
        self.doubled_dimension = doubled_dimension

    def links_per_node(self) -> int:
        """Degree including the duplicate pair: ``n + 1``."""
        return self.dimension + 1

"""Comparison networks for the paper's Section 3 evaluation."""

from repro.networks.base import (
    BatchResult,
    ComparisonNetwork,
    make_batch,
    permutation_pairs,
)
from repro.networks.crossbar import CrossbarNetwork
from repro.networks.ehc import EnhancedHypercubeNetwork
from repro.networks.fattree import FatTreeNetwork
from repro.networks.gfc import GeneralizedFoldingCubeNetwork
from repro.networks.hypercube import HypercubeNetwork, ecube_route, is_power_of_two
from repro.networks.karyncube import KAryNCubeNetwork
from repro.networks.mesh import MeshNetwork, square_side
from repro.networks.multibus import MultiBusNetwork
from repro.networks.registry import (
    EXTRA_NETWORKS,
    PAPER_NETWORKS,
    build_network,
)
from repro.networks.rmb_adapter import RMBNetworkAdapter, TwoRingRMBAdapter
from repro.networks.wormhole import Channel, WormholeEngine

__all__ = [
    "BatchResult",
    "Channel",
    "ComparisonNetwork",
    "CrossbarNetwork",
    "EXTRA_NETWORKS",
    "EnhancedHypercubeNetwork",
    "FatTreeNetwork",
    "GeneralizedFoldingCubeNetwork",
    "HypercubeNetwork",
    "KAryNCubeNetwork",
    "MeshNetwork",
    "MultiBusNetwork",
    "PAPER_NETWORKS",
    "RMBNetworkAdapter",
    "TwoRingRMBAdapter",
    "WormholeEngine",
    "build_network",
    "ecube_route",
    "is_power_of_two",
    "make_batch",
    "permutation_pairs",
    "square_side",
]

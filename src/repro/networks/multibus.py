"""Conventional (non-reconfigurable) multiple-bus system — Mudge et al.,
paper reference [5].

``k`` global buses span all ``N`` nodes.  A message seizes one whole bus
for its full duration (a global bus has no notion of segments, so span
does not matter, but at most ``k`` messages are ever in flight).  A
central arbiter grants buses in FIFO order.

This is the baseline the RMB's concluding remark contrasts against: "an
RMB with k buses should not be considered equivalent of a k bus system —
an RMB with k buses can support many more than k virtual buses
simultaneously" (experiment E15).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.core.flits import Message
from repro.errors import ProtocolError, TopologyError
from repro.networks.base import BatchResult, ComparisonNetwork


class MultiBusNetwork(ComparisonNetwork):
    """``k`` arbitrated global buses.

    Args:
        nodes: node count (affects only validation and reporting; a global
            bus reaches every node in one bus transaction).
        buses: number of parallel global buses ``k``.
        bus_latency: extra ticks per transaction for arbitration plus
            end-to-end propagation on the long global wire.  The RMB
            paper's VLSI argument is precisely that global buses are long;
            the default charges one tick, the most charitable choice.
    """

    name = "multibus"

    def __init__(self, nodes: int, buses: int, bus_latency: float = 1.0) -> None:
        super().__init__(nodes)
        if buses < 1:
            raise TopologyError(f"need >= 1 bus, got {buses}")
        if bus_latency < 0:
            raise TopologyError("bus_latency must be >= 0")
        self.buses = buses
        self.bus_latency = bus_latency

    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        result = BatchResult(self.name, self.nodes, 0.0)
        queue = deque(sorted(messages, key=lambda m: m.message_id))
        # (finish_time, source, destination) per busy bus.
        busy: list[tuple[float, int, int]] = []
        tx_busy: set[int] = set()
        rx_busy: set[int] = set()
        now = 0.0
        while queue or busy:
            if now > max_ticks:
                raise ProtocolError(
                    f"multibus failed to drain within {max_ticks} ticks"
                )
            # Complete transactions due now.
            for finish, source, destination in list(busy):
                if finish <= now:
                    busy.remove((finish, source, destination))
                    tx_busy.discard(source)
                    rx_busy.discard(destination)
            # FIFO grant: only the queue head may take a bus (central
            # arbiter with a single request queue).
            while queue and len(busy) < self.buses:
                head = queue[0]
                if head.source in tx_busy or head.destination in rx_busy:
                    break
                queue.popleft()
                duration = head.total_flits + self.bus_latency
                finish = now + duration
                busy.append((finish, head.source, head.destination))
                tx_busy.add(head.source)
                rx_busy.add(head.destination)
                result.delivered += 1
                result.latencies.append(finish)
            now += 1.0
        result.makespan = max(result.latencies) if result.latencies else 0.0
        return result

"""Adapters presenting the RMB through the comparison-network interface.

Each ``route_batch`` call builds a fresh ring (state never leaks between
experiment points), submits the batch, drains it under invariant
monitoring, and reports the same :class:`BatchResult` shape as every other
network.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.core.network import RMBRing, TwoRingRMB
from repro.hier.hier import HierRMB
from repro.networks.base import BatchResult, ComparisonNetwork


class RMBNetworkAdapter(ComparisonNetwork):
    """Single-ring RMB as a :class:`ComparisonNetwork`."""

    name = "rmb"

    def __init__(self, config: RMBConfig, seed: int = 0,
                 check_invariants: bool = True) -> None:
        super().__init__(config.nodes)
        self.config = config
        self.seed = seed
        self.check_invariants = check_invariants
        self.last_ring: Optional[RMBRing] = None

    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        ring = RMBRing(
            self.config, seed=self.seed,
            check_invariants=self.check_invariants,
            trace_kinds=set(),
        )
        self.last_ring = ring
        ring.submit_all(messages)
        ring.drain(max_ticks=max_ticks)
        result = BatchResult(self.name, self.nodes, ring.sim.now)
        for record in ring.routing.records.values():
            if record.finished:
                result.delivered += 1
                latency = record.latency()
                if latency is not None:
                    result.latencies.append(latency)
        return result

    def describe(self) -> str:
        return f"rmb(N={self.nodes}, k={self.config.lanes})"


class TwoRingRMBAdapter(ComparisonNetwork):
    """Bidirectional (two-ring) RMB as a :class:`ComparisonNetwork`."""

    name = "rmb-2ring"

    def __init__(self, config: RMBConfig, lanes_per_direction: Optional[int] = None,
                 seed: int = 0, check_invariants: bool = True) -> None:
        super().__init__(config.nodes)
        self.config = config
        self.lanes_per_direction = lanes_per_direction
        self.seed = seed
        self.check_invariants = check_invariants
        self.last_network: Optional[TwoRingRMB] = None

    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        network = TwoRingRMB(
            self.config,
            lanes_per_direction=self.lanes_per_direction,
            seed=self.seed,
            check_invariants=self.check_invariants,
        )
        self.last_network = network
        network.submit_all(messages)
        network.drain(max_ticks=max_ticks)
        result = BatchResult(self.name, self.nodes, network.sim.now)
        for ring in (network.clockwise, network.counterclockwise):
            for record in ring.routing.records.values():
                if record.finished:
                    result.delivered += 1
                    latency = record.latency()
                    if latency is not None:
                        result.latencies.append(latency)
        return result

    def describe(self) -> str:
        lanes = self.lanes_per_direction
        return f"rmb-2ring(N={self.nodes}, lanes/dir={lanes})"


class HierRMBAdapter(ComparisonNetwork):
    """Hierarchical RMB fabric as a :class:`ComparisonNetwork`.

    Deliveries and latencies are *journey-level* (end to end across
    bridge hops), so the hierarchy is scored on what a PE actually
    experiences, not on per-ring leg counts.  ``name`` carries the
    requested registry spelling (``hier`` or ``hier:MxN``) so arena rows
    and orderings stay stable for golden fixtures.
    """

    def __init__(self, locals: int, nodes_per_local: int, k: int,
                 seed: int = 0, check_invariants: bool = True,
                 name: str = "hier") -> None:
        super().__init__(locals * nodes_per_local)
        self.name = name
        self.locals = locals
        self.nodes_per_local = nodes_per_local
        self.k = k
        self.seed = seed
        self.check_invariants = check_invariants
        self.last_network: Optional[HierRMB] = None

    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        network = HierRMB(
            locals=self.locals,
            nodes_per_local=self.nodes_per_local,
            lanes=self.k,
            seed=self.seed,
            check_invariants=self.check_invariants,
        )
        self.last_network = network
        network.submit_all(messages)
        network.drain(max_ticks=max_ticks)
        result = BatchResult(self.name, self.nodes, network.sim.now)
        for journey in network.journeys.values():
            if journey.finished:
                result.delivered += 1
                latency = journey.latency()
                if latency is not None:
                    result.latencies.append(latency)
        return result

    def describe(self) -> str:
        local_lanes = max(1, self.k - 1)
        global_lanes = min(self.nodes_per_local, max(2, self.k))
        total = self.nodes * local_lanes + self.locals * global_lanes
        budget = self.nodes * self.k
        return (f"hier({self.locals}x{self.nodes_per_local}, k={self.k}, "
                f"lanes {local_lanes}/{global_lanes}, "
                f"wires {total}<={budget})")

"""k-ary n-cube (torus) — the paper's named future-work comparator.

Section 4: "Future research plans also include ... comparison with other
universal interconnection networks such as the k-ary n cube network."
This module carries that comparison out: an ``n``-dimensional torus of
radix ``r`` (``N = r**n`` nodes) with dimension-order routing, shortest
direction per dimension, and two virtual channels per link under the
classic dateline discipline (Dally), which breaks the intra-ring cyclic
channel dependency:

* a worm uses ``vc0`` on every hop of a dimension until the hop that
  crosses that dimension's dateline (the wrap edge through coordinate 0),
  and ``vc1`` from that hop onward;
* since vc0 dependencies never wrap and vc1 dependencies never reach back
  past the dateline, the channel dependency graph is acyclic.

Virtual channels are modelled as separate :class:`Channel` objects
(labels ``vc0``/``vc1``) so the wormhole engine's ownership rules apply
per VC, exactly as per-VC buffer ownership works in hardware.
"""

from __future__ import annotations

from repro.core.flits import Message
from repro.errors import RoutingError, TopologyError
from repro.networks.wormhole import Channel, WormholeEngine


class KAryNCubeNetwork(WormholeEngine):
    """Bidirectional torus with dimension-order + dateline-VC routing.

    Args:
        radix: nodes per ring (``k`` in "k-ary"); must be >= 2.
        dimensions: number of dimensions (``n``); must be >= 1.
    """

    def __init__(self, radix: int, dimensions: int) -> None:
        if radix < 2:
            raise TopologyError(f"radix must be >= 2, got {radix}")
        if dimensions < 1:
            raise TopologyError(f"need >= 1 dimension, got {dimensions}")
        self.radix = radix
        self.dimensions = dimensions
        nodes = radix ** dimensions
        channels = []
        for node in range(nodes):
            for dim in range(dimensions):
                for step in (+1, -1):
                    neighbour = self._neighbour(node, dim, step)
                    direction = "pos" if step > 0 else "neg"
                    for vc in ("vc0", "vc1"):
                        channels.append(Channel(
                            node, neighbour, multiplicity=1,
                            label=f"dim{dim}-{direction}-{vc}",
                        ))
        super().__init__(nodes, channels, self._route, name="karyncube")

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coordinate(self, node: int, dim: int) -> int:
        return (node // (self.radix ** dim)) % self.radix

    def _neighbour(self, node: int, dim: int, step: int) -> int:
        stride = self.radix ** dim
        coordinate = self.coordinate(node, dim)
        wrapped = (coordinate + step) % self.radix
        return node + (wrapped - coordinate) * stride

    def _direction(self, source_coord: int, dest_coord: int) -> int:
        """Shortest travel direction around the ring (+1 ties)."""
        forward = (dest_coord - source_coord) % self.radix
        backward = (source_coord - dest_coord) % self.radix
        return +1 if forward <= backward else -1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, engine: WormholeEngine, message: Message,
               node: int) -> int:
        for dim in range(self.dimensions):
            here = self.coordinate(node, dim)
            target = self.coordinate(message.destination, dim)
            if here == target:
                continue
            origin = self.coordinate(message.source, dim)
            step = self._direction(origin, target)
            neighbour = self._neighbour(node, dim, step)
            vc = self._virtual_channel(origin, here, step)
            direction = "pos" if step > 0 else "neg"
            return engine.channel_between(
                node, neighbour, f"dim{dim}-{direction}-{vc}"
            ).index
        raise RoutingError(
            f"k-ary n-cube routing called at the destination {node}"
        )  # pragma: no cover - engine never calls at the destination

    def _virtual_channel(self, origin: int, here: int, step: int) -> str:
        """Dateline discipline: vc1 on and after the wrap hop."""
        if step > 0:
            crossed = here < origin
            crossing_now = here == self.radix - 1
        else:
            crossed = here > origin
            crossing_now = here == 0
        return "vc1" if (crossed or crossing_now) else "vc0"

    # ------------------------------------------------------------------
    # Structural accounting
    # ------------------------------------------------------------------
    def physical_links(self) -> int:
        """Unidirectional physical links (VCs share the physical wire)."""
        return self.nodes * self.dimensions * 2

    def describe(self) -> str:
        return (f"karyncube(r={self.radix}, n={self.dimensions}, "
                f"N={self.nodes})")

"""A generic flit-level wormhole-switching simulator.

The comparison networks of paper Section 3 (hypercube, EHC, fat-tree,
mesh) are all wormhole/circuit networks in the era's literature; this
engine models classic wormhole switching [Dally 92, the paper's ref 10]:

* a message is a worm of ``W = data_flits + 2`` flits;
* each unidirectional channel has a one-flit buffer per *sub-channel*
  (a channel's ``multiplicity`` models bundled parallel wires — fat-tree
  capacities, EHC's duplicated dimension);
* a worm acquires a sub-channel at its head and owns it until the tail
  flit leaves it — blocked heads leave the worm holding its channels,
  which is exactly the congestion behaviour the RMB's circuit+compaction
  design competes against;
* routing is a pluggable function choosing the next channel at each node,
  evaluated when the head arrives (so adaptive choices see current state).

The simulator is tick-stepped and deterministic: worms advance in a fixed
order each tick (ascending message id), head first, then body flits front
to back, one hop per flit per tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.flits import Message
from repro.errors import ProtocolError, RoutingError, TopologyError
from repro.networks.base import BatchResult, ComparisonNetwork


@dataclass
class Channel:
    """A unidirectional channel (possibly a bundle of parallel wires).

    Attributes:
        source / sink: node indices.
        multiplicity: number of independent sub-channels in the bundle.
        label: topology-specific tag (e.g. dimension, tree level).
    """

    source: int
    sink: int
    multiplicity: int = 1
    label: str = ""
    index: int = -1
    owners: list[Optional[int]] = field(default_factory=list)
    buffered: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise TopologyError(
                f"channel {self.source}->{self.sink}: multiplicity >= 1"
            )
        self.owners = [None] * self.multiplicity
        self.buffered = [0] * self.multiplicity

    def free_subchannel(self) -> Optional[int]:
        """Index of an unowned sub-channel, or ``None``."""
        for sub, owner in enumerate(self.owners):
            if owner is None:
                return sub
        return None

    def utilized(self) -> int:
        return sum(1 for owner in self.owners if owner is not None)


#: Routing callback: (engine, message, current_node) -> channel index.
#: Must return a channel whose ``source`` is ``current_node``; adaptive
#: routers may inspect channel owners through the engine.
RouteFn = Callable[["WormholeEngine", Message, int], int]


@dataclass
class _Worm:
    """Run-time state of one in-flight message."""

    message: Message
    start_time: float
    # (channel index, sub-channel) pairs acquired so far, source side first.
    path: list[tuple[int, int]] = field(default_factory=list)
    flits_at_source: int = 0
    delivered_flits: int = 0
    head_done: bool = False       # head flit absorbed at the destination
    released_upto: int = 0        # path entries fully released
    finish_time: Optional[float] = None

    @property
    def total_flits(self) -> int:
        return self.message.total_flits


class WormholeEngine(ComparisonNetwork):
    """Wormhole network over an explicit channel graph.

    Args:
        nodes: node count.
        channels: channel list (indices assigned in order).
        route: next-channel chooser.
        name: reported network name.
        injection_limit: max concurrent worms per source node (1 models a
            single network interface, matching the RMB's one-TX rule).
        ejection_limit: max concurrent worms draining per destination
            (1 matches the RMB's one-RX rule).
    """

    def __init__(
        self,
        nodes: int,
        channels: Sequence[Channel],
        route: RouteFn,
        name: str = "wormhole",
        injection_limit: int = 1,
        ejection_limit: int = 1,
    ) -> None:
        super().__init__(nodes)
        self.name = name
        self.channels = list(channels)
        for index, channel in enumerate(self.channels):
            channel.index = index
        self.route = route
        self.injection_limit = injection_limit
        self.ejection_limit = ejection_limit
        self.outgoing: dict[int, list[int]] = {n: [] for n in range(nodes)}
        for channel in self.channels:
            self.outgoing[channel.source].append(channel.index)
        self.now = 0.0
        self._worms: list[_Worm] = []
        self._active_tx: dict[int, int] = {}
        self._active_rx: dict[int, int] = {}
        self.total_channel_ticks_busy = 0
        self._channel_heat: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def channel_between(self, source: int, sink: int,
                        label: Optional[str] = None) -> Channel:
        """The (first) channel from ``source`` to ``sink``.

        Raises:
            TopologyError: if no such channel exists.
        """
        for index in self.outgoing[source]:
            channel = self.channels[index]
            if channel.sink == sink and (label is None or channel.label == label):
                return channel
        raise TopologyError(f"no channel {source}->{sink} (label={label!r})")

    def link_count(self) -> int:
        """Total wires: sum of channel multiplicities."""
        return sum(channel.multiplicity for channel in self.channels)

    def mean_channel_utilization(self) -> float:
        """Fraction of sub-channel-ticks spent owned by a worm.

        Accumulated over every tick the engine has executed; a batch that
        saturates a bottleneck link still reports low *mean* utilisation
        when the rest of the fabric idles — exactly the imbalance the
        per-channel report below makes visible.
        """
        if self.now == 0:
            return 0.0
        capacity = self.link_count() * self.now
        return self.total_channel_ticks_busy / capacity

    def hottest_channels(self, top: int = 5) -> list[tuple[str, int]]:
        """The ``top`` channels by accumulated busy ticks.

        Returns ``(description, busy_ticks)`` pairs, hottest first —
        the bottleneck-spotting view of a finished batch.
        """
        ranked = sorted(
            ((index, busy) for index, busy in self._channel_heat.items()
             if busy > 0),
            key=lambda item: item[1], reverse=True,
        )
        return [
            (self._describe_channel(index), busy)
            for index, busy in ranked[:top]
        ]

    def _describe_channel(self, index: int) -> str:
        channel = self.channels[index]
        label = f" {channel.label}" if channel.label else ""
        return f"{channel.source}->{channel.sink}{label}"

    # ------------------------------------------------------------------
    # Batch driver
    # ------------------------------------------------------------------
    def route_batch(self, messages: Sequence[Message],
                    max_ticks: float = 1_000_000.0) -> BatchResult:
        pending = sorted(messages, key=lambda m: m.message_id)
        for message in pending:
            if not 0 <= message.destination < self.nodes:
                raise RoutingError(
                    f"message {message.message_id} destination out of range"
                )
        waiting = list(pending)
        result = BatchResult(self.name, self.nodes, 0.0)
        start = self.now
        while waiting or self._worms:
            if self.now - start > max_ticks:
                raise ProtocolError(
                    f"{self.describe()} failed to drain: "
                    f"{len(waiting)} waiting, {len(self._worms)} in flight "
                    f"after {max_ticks} ticks"
                )
            waiting = self._inject(waiting)
            self._tick()
            finished = [worm for worm in self._worms
                        if worm.finish_time is not None]
            for worm in finished:
                result.delivered += 1
                result.latencies.append(worm.finish_time - worm.start_time)
                self._worms.remove(worm)
        result.makespan = self.now - start
        return result

    def _inject(self, waiting: list[Message]) -> list[Message]:
        still_waiting = []
        for message in waiting:
            active = self._active_tx.get(message.source, 0)
            if active >= self.injection_limit:
                still_waiting.append(message)
                continue
            worm = _Worm(message=message, start_time=self.now,
                         flits_at_source=message.total_flits)
            self._worms.append(worm)
            self._active_tx[message.source] = active + 1
        return still_waiting

    # ------------------------------------------------------------------
    # Core tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.now += 1.0
        for worm in self._worms:
            if worm.finish_time is None:
                self._advance_worm(worm)
        for channel in self.channels:
            busy = channel.utilized()
            if busy:
                self.total_channel_ticks_busy += busy
                self._channel_heat[channel.index] = (
                    self._channel_heat.get(channel.index, 0) + busy
                )

    def _head_node(self, worm: _Worm) -> int:
        if not worm.path:
            return worm.message.source
        channel_index, _sub = worm.path[-1]
        return self.channels[channel_index].sink

    def _advance_worm(self, worm: _Worm) -> None:
        destination = worm.message.destination
        head_node = self._head_node(worm)

        # 1. Head movement: absorb at the destination or acquire onward.
        if not worm.head_done:
            if head_node == destination and worm.path:
                if self._try_start_ejection(worm):
                    worm.head_done = True
                    # Absorb the head flit itself from the final channel.
                    self._drain_from(worm, len(worm.path) - 1)
            else:
                channel_index = self.route(self, worm.message, head_node)
                channel = self.channels[channel_index]
                if channel.source != head_node:
                    raise RoutingError(
                        f"router returned channel {channel.source}->"
                        f"{channel.sink} at node {head_node}"
                    )
                sub = channel.free_subchannel()
                if sub is not None and channel.buffered[sub] == 0:
                    channel.owners[sub] = worm.message.message_id
                    channel.buffered[sub] = 0
                    self._shift_into(worm, channel, sub)
        else:
            # 2. Ejection: one flit per tick leaves the last channel.
            self._drain_from(worm, len(worm.path) - 1)

        # 3. Body flits ripple forward behind the head.
        self._ripple(worm)

        # 4. Completion check.
        if worm.delivered_flits == worm.total_flits:
            worm.finish_time = self.now
            self._active_tx[worm.message.source] -= 1
            self._active_rx[destination] -= 1

    def _try_start_ejection(self, worm: _Worm) -> bool:
        destination = worm.message.destination
        active = self._active_rx.get(destination, 0)
        if active >= self.ejection_limit:
            return False
        self._active_rx[destination] = active + 1
        return True

    def _shift_into(self, worm: _Worm, channel: Channel, sub: int) -> None:
        """Move the front-most flit into a newly acquired channel."""
        if worm.path:
            previous_index, previous_sub = worm.path[-1]
            previous = self.channels[previous_index]
            if previous.buffered[previous_sub] == 0:  # pragma: no cover
                raise ProtocolError(
                    f"worm {worm.message.message_id}: head flit missing from "
                    f"channel {previous.source}->{previous.sink}"
                )
            previous.buffered[previous_sub] -= 1
            channel.buffered[sub] += 1
        else:
            if worm.flits_at_source == 0:  # pragma: no cover
                raise ProtocolError(
                    f"worm {worm.message.message_id} has no flits to inject"
                )
            worm.flits_at_source -= 1
            channel.buffered[sub] += 1
        worm.path.append((channel.index, sub))

    def _drain_from(self, worm: _Worm, last: int) -> None:
        """Absorb one flit from the final channel into the destination."""
        if last < 0:
            return
        channel_index, sub = worm.path[last]
        channel = self.channels[channel_index]
        if channel.buffered[sub] > 0:
            channel.buffered[sub] -= 1
            if worm.head_done:
                worm.delivered_flits += 1
            self._maybe_release(worm)

    def _ripple(self, worm: _Worm) -> None:
        """Advance body flits one hop where space allows, front to back.

        Positions below ``released_upto`` are channels the tail has left —
        they may already belong to another worm, so they are never touched.
        """
        for position in range(len(worm.path) - 1, worm.released_upto, -1):
            ahead_index, ahead_sub = worm.path[position]
            behind_index, behind_sub = worm.path[position - 1]
            ahead = self.channels[ahead_index]
            behind = self.channels[behind_index]
            if ahead.buffered[ahead_sub] == 0 and behind.buffered[behind_sub] > 0:
                behind.buffered[behind_sub] -= 1
                ahead.buffered[ahead_sub] += 1
                self._maybe_release(worm)
        # Feed from the source into the first channel (only while the worm
        # still owns it; release implies the source already drained).
        if worm.path and worm.flits_at_source > 0 and worm.released_upto == 0:
            first_index, first_sub = worm.path[0]
            first = self.channels[first_index]
            if first.buffered[first_sub] == 0:
                worm.flits_at_source -= 1
                first.buffered[first_sub] += 1

    def _maybe_release(self, worm: _Worm) -> None:
        """Release channels the tail has fully left (front of the path)."""
        sent_everything = worm.flits_at_source == 0
        if not sent_everything:
            return
        while worm.released_upto < len(worm.path):
            channel_index, sub = worm.path[worm.released_upto]
            channel = self.channels[channel_index]
            if channel.buffered[sub] > 0:
                break
            # The source is empty and every channel behind this one has
            # already been released, so the tail flit has passed: release.
            channel.owners[sub] = None
            worm.released_upto += 1

"""Factory registry for comparison networks.

The race benchmarks request networks by name with a common parameter set;
this module centralises how each architecture is sized "fairly" for a
k-permutation comparison, following Section 3.2's own normalisations:

* ``rmb`` — N nodes, k lanes;
* ``rmb-2ring`` — N nodes, k/2 lanes per direction (equal wire budget);
* ``hypercube`` / ``ehc`` — N nodes (power of two);
* ``gfc`` — N processors folded into N/fold super-nodes with fold = min(k, N/4)
  rounded to a power of two (the paper's "scaled GFC");
* ``fattree`` — N processors, channel capacities capped at k (Figure 11);
* ``mesh`` — N nodes, channel multiplicity ceil(sqrt(k)) (the paper widens
  each mesh dimension by sqrt(k) to pass k wires);
* ``multibus`` — k global arbitrated buses;
* ``crossbar`` — contention floor;
* ``hier`` / ``hier:MxN`` — M local RMB rings of N/M nodes bridged by a
  global ring, spending at most the flat ring's ``N * k`` segments
  (``hier`` auto-factors N into the squarest even M x n split; the
  explicit form must satisfy ``M * n == N``).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.config import RMBConfig
from repro.errors import ConfigurationError
from repro.networks.base import ComparisonNetwork
from repro.networks.crossbar import CrossbarNetwork
from repro.networks.ehc import EnhancedHypercubeNetwork
from repro.networks.fattree import FatTreeNetwork
from repro.networks.gfc import GeneralizedFoldingCubeNetwork
from repro.networks.hypercube import HypercubeNetwork
from repro.networks.karyncube import KAryNCubeNetwork
from repro.networks.mesh import MeshNetwork
from repro.networks.multibus import MultiBusNetwork
from repro.networks.rmb_adapter import (
    HierRMBAdapter,
    RMBNetworkAdapter,
    TwoRingRMBAdapter,
)


def hier_shape(name: str, nodes: int) -> tuple[int, int]:
    """The ``(locals, nodes_per_local)`` split a hier spec asks for.

    ``hier`` auto-factors ``nodes`` into the squarest ``m x n`` split
    with both factors even and at least 4 (preferring fewer, larger
    local rings on ties); ``hier:MxN`` is explicit and must multiply
    out to ``nodes``.
    """
    if name == "hier":
        candidates = [
            (m, nodes // m) for m in range(4, nodes // 4 + 1, 2)
            if nodes % m == 0 and (nodes // m) % 2 == 0 and nodes // m >= 4
        ]
        if not candidates:
            raise ConfigurationError(
                f"cannot factor N={nodes} into an even MxN hierarchy "
                "(both factors must be even and >= 4); "
                "use hier:MxN to choose the split explicitly"
            )
        side = math.sqrt(nodes)
        return min(candidates, key=lambda mn: (abs(mn[0] - side), mn[0]))
    spec = name.removeprefix("hier:")
    parts = spec.split("x")
    try:
        m, n = (int(part) for part in parts)
    except ValueError:
        m, n = 0, 0
    if len(parts) != 2 or m <= 0 or n <= 0:
        raise ConfigurationError(
            f"bad hier spec {name!r}; expected hier or hier:MxN "
            "(e.g. hier:4x8)"
        )
    if m * n != nodes:
        raise ConfigurationError(
            f"hier spec {name!r} covers {m * n} nodes but the comparison "
            f"is sized for N={nodes}"
        )
    if m % 2 or n % 2 or m < 4 or n < 4:
        raise ConfigurationError(
            f"hier spec {name!r} needs both factors even and >= 4 "
            "(each tier is itself an RMB ring)"
        )
    return m, n


def is_known_network(name: str) -> bool:
    """Whether :func:`build_network` can resolve ``name``.

    Covers the fixed registry names plus the parametrised ``hier:MxN``
    family (shape validation happens at build time, when N is known).
    """
    if name in PAPER_NETWORKS or name in EXTRA_NETWORKS:
        return True
    return name.startswith("hier:")


def _power_of_two_at_most(value: int) -> int:
    if value < 1:
        return 1
    return 1 << (value.bit_length() - 1)


def _square_torus(nodes: int) -> KAryNCubeNetwork:
    """An r x r torus with r = sqrt(nodes); square sizes only."""
    side = math.isqrt(nodes)
    if side * side != nodes:
        raise ConfigurationError(
            f"karyncube comparison sizes N as a square torus; {nodes} is "
            "not a perfect square"
        )
    return KAryNCubeNetwork(radix=side, dimensions=2)


def build_network(name: str, nodes: int, k: int,
                  seed: int = 0) -> ComparisonNetwork:
    """Build a named network sized for N nodes and k-permutation support."""
    if name == "hier" or name.startswith("hier:"):
        locals_count, nodes_per_local = hier_shape(name, nodes)
        return HierRMBAdapter(
            locals_count, nodes_per_local, k=max(2, k), seed=seed, name=name)
    builders: dict[str, Callable[[], ComparisonNetwork]] = {
        "rmb": lambda: RMBNetworkAdapter(
            RMBConfig(nodes=nodes, lanes=k), seed=seed
        ),
        "rmb-2ring": lambda: TwoRingRMBAdapter(
            RMBConfig(nodes=nodes, lanes=max(2, k)), seed=seed
        ),
        "hypercube": lambda: HypercubeNetwork(nodes),
        "ehc": lambda: EnhancedHypercubeNetwork(nodes),
        "gfc": lambda: GeneralizedFoldingCubeNetwork(
            max(2, nodes // max(1, _power_of_two_at_most(min(k, nodes // 4)))),
            fold=max(1, _power_of_two_at_most(min(k, nodes // 4))),
        ),
        "fattree": lambda: FatTreeNetwork(nodes, k=k),
        "mesh": lambda: MeshNetwork(nodes,
                                    multiplicity=max(1, math.isqrt(k))),
        "multibus": lambda: MultiBusNetwork(nodes, buses=k),
        "crossbar": lambda: CrossbarNetwork(nodes),
        "karyncube": lambda: _square_torus(nodes),
    }
    if name not in builders:
        raise ConfigurationError(
            f"unknown network {name!r}; choose from {sorted(builders)}"
        )
    return builders[name]()


#: Networks the paper's Section 3 comparison covers, in its order.
PAPER_NETWORKS = ("rmb", "hypercube", "ehc", "gfc", "fattree", "mesh")

#: Extra reference rows this reproduction adds (k-ary n-cube is the
#: paper's own named future-work comparator, realised as a square torus;
#: ``hier`` is the N-ring hierarchical fabric, also reachable with an
#: explicit split as ``hier:MxN``).
EXTRA_NETWORKS = ("rmb-2ring", "multibus", "crossbar", "karyncube", "hier")

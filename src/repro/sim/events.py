"""Event primitives for the discrete-event kernel.

An :class:`Event` is a callback bound to a simulation time.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous
events execute in a deterministic order: lower priority value first, then
insertion order.  Determinism matters for reproducibility of every
experiment in this repository — two runs with the same seed must produce
identical traces.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import SchedulingError

#: Priority used for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at a tick.
PRIORITY_EARLY = -10
#: Priority for monitors that must observe the post-update state of a tick.
PRIORITY_LATE = 10


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Instances are created through :meth:`repro.sim.kernel.Simulator.schedule`
    rather than directly.  The dataclass ordering key is
    ``(time, priority, seq)``; ``callback`` and friends are excluded from
    comparison.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The queue lazily discards cancelled events on pop, which keeps
    cancellation O(1) at the cost of a small amount of retained memory; the
    simulations in this library cancel rarely (retry timers mostly), so the
    trade-off favours cancellation speed.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        # A plain integer sequence rather than itertools.count: the queue
        # is part of a run's checkpointable state, and the counter must
        # survive pickling with its exact value so post-restore pushes get
        # the same sequence numbers an uninterrupted run would assign.
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Insert a callback at ``time`` and return its :class:`Event`."""
        event = Event(time, priority, self._next_seq, callback, label)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Inform the queue that one previously pushed event was cancelled.

        :meth:`Event.cancel` does not know its queue; the kernel calls this
        to keep the live count accurate.
        """
        self._live -= 1

    def peek_events(self, count: int) -> list[Event]:
        """The next ``count`` live events in firing order, without popping.

        Used by the kernel's livelock diagnostics: when ``max_events``
        trips, the labels of the imminent events usually identify the
        component that is rescheduling itself forever.
        """
        live = [event for event in self._heap if not event.cancelled]
        return heapq.nsmallest(count, live)

    def drain(self) -> Iterator[Event]:
        """Yield and remove all live events in order (for shutdown/tests)."""
        while self:
            yield self.pop()

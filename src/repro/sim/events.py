"""Event primitives for the discrete-event kernel.

An :class:`Event` is a callback bound to a simulation time.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous
events execute in a deterministic order: lower priority value first, then
insertion order.  Determinism matters for reproducibility of every
experiment in this repository — two runs with the same seed must produce
identical traces.

The queue stores ``(time, priority, seq, event)`` tuples rather than the
events themselves: tuple comparison runs entirely in C, so heap sifts
never re-enter the interpreter.  With millions of events per run the
ordering comparisons are the dominant heap cost, and the tuple layout
cuts them to near the floor of what ``heapq`` can do.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.errors import SchedulingError

#: Priority used for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at a tick.
PRIORITY_EARLY = -10
#: Priority for monitors that must observe the post-update state of a tick.
PRIORITY_LATE = 10


class Event:
    """A scheduled callback.

    Instances are created through :meth:`repro.sim.kernel.Simulator.schedule`
    rather than directly.  Ordering lives in the queue's heap entries, not
    here; events themselves compare by identity.  ``__slots__`` keeps the
    per-event footprint to the six fields — no ``__dict__`` allocation.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __getstate__(self) -> tuple:
        return (self.time, self.priority, self.seq, self.callback,
                self.label, self.cancelled)

    def __setstate__(self, state: tuple) -> None:
        (self.time, self.priority, self.seq, self.callback,
         self.label, self.cancelled) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, priority={self.priority}, "
                f"seq={self.seq}, label={self.label!r}{flag})")


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The queue lazily discards cancelled events on pop, which keeps
    cancellation O(1) at the cost of a small amount of retained memory; the
    simulations in this library cancel rarely (retry timers mostly), so the
    trade-off favours cancellation speed.
    """

    def __init__(self) -> None:
        # Heap entries are (time, priority, seq, event): seq is unique, so
        # comparisons never reach the event and stay in C.
        self._heap: list[tuple[float, int, int, Event]] = []
        # A plain integer sequence rather than itertools.count: the queue
        # is part of a run's checkpointable state, and the counter must
        # survive pickling with its exact value so post-restore pushes get
        # the same sequence numbers an uninterrupted run would assign.
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Insert a callback at ``time`` and return its :class:`Event`."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, label)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Inform the queue that one previously pushed event was cancelled.

        :meth:`Event.cancel` does not know its queue; the kernel calls this
        to keep the live count accurate.
        """
        self._live -= 1

    def peek_events(self, count: int) -> list[Event]:
        """The next ``count`` live events in firing order, without popping.

        Used by the kernel's livelock diagnostics: when ``max_events``
        trips, the labels of the imminent events usually identify the
        component that is rescheduling itself forever.
        """
        live = [entry for entry in self._heap if not entry[3].cancelled]
        return [entry[3] for entry in heapq.nsmallest(count, live)]

    def drain(self) -> Iterator[Event]:
        """Yield and remove all live events in order (for shutdown/tests)."""
        while self:
            yield self.pop()

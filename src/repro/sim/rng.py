"""Named, seedable random streams.

Every stochastic element of an experiment (traffic, clock jitter, retry
backoff, ...) draws from its own :class:`RandomStream`, derived from one
root seed.  Changing one component's draw pattern then never perturbs the
others — essential for the ablation benchmarks, where e.g. compaction is
switched off but the offered traffic must stay byte-identical.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A thin, explicit wrapper over :class:`random.Random`.

    Exposes only the draws the library actually uses; keeping the surface
    small makes it easy to verify determinism in tests.
    """

    def __init__(self, seed: int, name: str = "stream") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, options: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(options)

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self._random.shuffle(items)

    def sample(self, population: Sequence[T], count: int) -> list[T]:
        """``count`` distinct elements drawn without replacement."""
        return self._random.sample(population, count)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival with the given rate."""
        return self._random.expovariate(rate)

    def geometric(self, p: float) -> int:
        """Geometric draw >= 1: number of Bernoulli(p) trials to first success."""
        if not 0 < p <= 1:
            raise ValueError(f"p must be in (0, 1], got {p}")
        count = 1
        while self._random.random() >= p:
            count += 1
        return count

    def permutation(self, n: int) -> list[int]:
        """A uniformly random permutation of ``range(n)``."""
        items = list(range(n))
        self._random.shuffle(items)
        return items

    def getstate(self) -> tuple:
        """The underlying generator state (for checkpoint verification).

        :class:`random.Random` pickles its exact Mersenne-Twister state,
        so streams survive checkpoint/restore bit-for-bit; this accessor
        lets tests and the snapshot manifest assert that directly.
        """
        return self._random.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._random.setstate(state)

    def fork(self, name: str) -> "RandomStream":
        """Derive an independent child stream; deterministic in (seed, name)."""
        return RandomStream(_derive_seed(self.seed, f"{self.name}/{name}"),
                            name=f"{self.name}/{name}")


class SeedSequence:
    """Factory handing out named streams derived from a single root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._issued: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* object so that
        components sharing a name share draw state intentionally.
        """
        if name not in self._issued:
            self._issued[name] = RandomStream(
                _derive_seed(self.root_seed, name), name=name
            )
        return self._issued[name]

    def issued_names(self) -> list[str]:
        """Names of all streams created so far (sorted, for reporting)."""
        return sorted(self._issued)

"""Shared-resource primitives for process-style models.

The baseline network simulators (and the conventional multiple-bus with
arbitration) are built from these: a counted :class:`Resource` with a FIFO
or round-robin wait queue, and a :class:`Store` used as a bounded mailbox.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import CapacityError, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Waitable


class Resource:
    """A counted resource with FIFO granting.

    ``acquire()`` returns a :class:`Waitable` that fires when a unit is
    granted; the holder must later call :meth:`release` exactly once per
    grant.  Grants are strictly FIFO, so starvation is impossible — the
    property the round-robin arbiter baseline relies on.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise CapacityError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Waitable] = deque()
        # instrumentation
        self.total_grants = 0
        self.total_wait_time = 0.0
        self._wait_started: dict[int, float] = {}

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Waitable:
        """Request a unit; the returned waitable fires on grant."""
        grant = Waitable(name=f"{self.name}.grant")
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.total_grants += 1
            grant.fire(self.sim.now)
        else:
            self._wait_started[id(grant)] = self.sim.now
            self._waiters.append(grant)
        return grant

    def try_acquire(self) -> bool:
        """Take a unit immediately if one is free; never queues."""
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.total_grants += 1
            return True
        return False

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            grant = self._waiters.popleft()
            started = self._wait_started.pop(id(grant), self.sim.now)
            self.total_wait_time += self.sim.now - started
            self.total_grants += 1
            # the unit transfers directly to the waiter; in_use unchanged
            grant.fire(self.sim.now)
        else:
            self.in_use -= 1

    def mean_wait(self) -> float:
        """Average queueing delay over all grants so far."""
        if self.total_grants == 0:
            return 0.0
        return self.total_wait_time / self.total_grants


class Store:
    """A bounded FIFO mailbox connecting producer and consumer processes."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise CapacityError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Waitable] = deque()
        self._putters: Deque[tuple[Waitable, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Waitable:
        """Offer an item; the waitable fires once the item is accepted."""
        done = Waitable(name=f"{self.name}.put")
        if self._getters:
            getter = self._getters.popleft()
            getter.fire(item)
            done.fire(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            done.fire(None)
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Waitable:
        """Request an item; the waitable fires with the item."""
        got = Waitable(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            if self._putters:
                done, pending = self._putters.popleft()
                self._items.append(pending)
                done.fire(None)
            got.fire(item)
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            done, pending = self._putters.popleft()
            self._items.append(pending)
            done.fire(None)
        return True, item

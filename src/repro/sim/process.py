"""Generator-coroutine processes for the simulation kernel.

A *process* wraps a generator.  Each ``yield`` suspends the process:

* ``yield 5`` — sleep five time units;
* ``yield waitable`` — park on a :class:`Waitable` until it fires;
* ``yield other_process`` — join another process.

The style mirrors SimPy, implemented from scratch here because the
repository must be self-contained.

Parking and resuming allocate nothing beyond the kernel event itself:
the callbacks handed to the scheduler are bound methods, the resume
value rides in a slot on the process, and both classes use ``__slots__``
so a context switch never touches a ``__dict__``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Waitable:
    """A one-shot condition processes can wait on.

    Calling :meth:`fire` wakes all parked waiters with an optional value.
    Waiting on an already-fired waitable resumes immediately — this removes
    a whole class of lost-wakeup races from the models.
    """

    __slots__ = ("name", "_fired", "_value", "_callbacks")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        """Trigger the waitable; idempotent after the first call."""
        if self._fired:
            return
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when fired (immediately if already)."""
        if self._fired:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Process:
    """A running generator coroutine.

    Completion is observable via :attr:`finished`, :attr:`result` and by
    yielding the process from another process.
    """

    __slots__ = ("sim", "name", "_generator", "finished", "result", "error",
                 "_done", "_sent")

    def __init__(self, sim: "Simulator", generator: Generator[Any, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = Waitable(name=f"{self.name}.done")
        # Value delivered at the next resume; a process parks on exactly
        # one target at a time, so a single slot suffices.
        self._sent: Any = None

    # The kernel calls start() once, right after construction.
    def start(self) -> None:
        self.sim._schedule_trusted(0, self._kick, 0, self.name)

    def join(self) -> Waitable:
        """Return a waitable that fires when this process completes."""
        return self._done

    def _kick(self) -> None:
        sent, self._sent = self._sent, None
        self._advance(sent)

    def _advance(self, sent: Any) -> None:
        if self.finished:
            return
        try:
            target = self._generator.send(sent)
        except StopIteration as stop:
            self._complete(getattr(stop, "value", None))
            return
        except BaseException as exc:  # surface model bugs with context
            self.finished = True
            self.error = exc
            self._done.fire(None)
            raise
        self._park(target)

    def _park(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay {target!r}"
                )
            self.sim._schedule_trusted(target, self._kick, 0, self.name)
        elif isinstance(target, Waitable):
            target.add_callback(self._resume_later)
        elif isinstance(target, Process):
            # ``_done`` fires with the joined process's result, so the
            # bound method receives exactly the value the old closure
            # looked up via ``target.result``.
            target.join().add_callback(self._resume_later)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )

    def _resume_later(self, value: Any) -> None:
        # Resume via the event queue, never synchronously inside fire(),
        # so wake-ups are ordered deterministically with other events.
        self._sent = value
        self.sim._schedule_trusted(0, self._kick, 0, self.name)

    def _complete(self, value: Any) -> None:
        self.finished = True
        self.result = value
        self._done.fire(value)


def all_of(waitables: list[Waitable], name: str = "all_of") -> Waitable:
    """Return a waitable firing once every input has fired."""
    combined = Waitable(name=name)
    remaining = {"count": len(waitables)}
    if remaining["count"] == 0:
        combined.fire([])
        return combined
    values: list[Any] = [None] * len(waitables)

    def arm(index: int, waitable: Waitable) -> None:
        def on_fire(value: Any) -> None:
            values[index] = value
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.fire(values)

        waitable.add_callback(on_fire)

    for index, waitable in enumerate(waitables):
        arm(index, waitable)
    return combined


def any_of(waitables: list[Waitable], name: str = "any_of") -> Waitable:
    """Return a waitable firing as soon as any input fires."""
    combined = Waitable(name=name)
    for waitable in waitables:
        waitable.add_callback(combined.fire)
    return combined

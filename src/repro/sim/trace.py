"""Structured trace recording for simulations.

Traces serve three purposes here: debugging protocol models, rendering the
ASCII figures in the examples, and asserting temporal properties in tests
(e.g. "the top lane was released within two cycles of the header leaving").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence: a time, a kind tag, a subject, and details."""

    time: float
    kind: str
    subject: str
    details: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.details:
            if name == key:
                return value
        return default

    def __str__(self) -> str:  # compact human-readable line
        detail = " ".join(f"{k}={v}" for k, v in self.details)
        return f"[{self.time:>8.1f}] {self.kind:<18} {self.subject} {detail}".rstrip()


class TraceRecorder:
    """Accumulates :class:`TraceEntry` rows, optionally filtered by kind.

    Args:
        kinds: if given, only these kinds are retained (others are dropped
            at record time, keeping long simulations cheap to trace).
        capacity: optional bound; the oldest entries are discarded beyond it.

    :attr:`enabled` is False when the kind filter is the empty set — the
    recorder can never retain anything, so hot paths check this one flag
    and skip building the record's arguments entirely (no f-strings, no
    kwargs dict, no call).
    """

    def __init__(self, kinds: Optional[set[str]] = None,
                 capacity: Optional[int] = None) -> None:
        self.kinds = kinds
        self.capacity = capacity
        self.entries: list[TraceEntry] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        """True unless the kind filter rejects every possible entry."""
        return self.kinds is None or len(self.kinds) > 0

    def record(self, time: float, kind: str, subject: str, **details: Any) -> None:
        """Append an entry unless its kind is filtered out."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.entries.append(
            TraceEntry(time, kind, subject, tuple(sorted(details.items())))
        )
        if self.capacity is not None and len(self.entries) > self.capacity:
            overflow = len(self.entries) - self.capacity
            del self.entries[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """All entries with the given kind tag, in time order."""
        return [entry for entry in self.entries if entry.kind == kind]

    def matching(self, predicate: Callable[[TraceEntry], bool]) -> list[TraceEntry]:
        """All entries satisfying ``predicate``, in time order."""
        return [entry for entry in self.entries if predicate(entry)]

    def first(self, kind: str) -> Optional[TraceEntry]:
        """Earliest entry of ``kind``, or ``None``."""
        for entry in self.entries:
            if entry.kind == kind:
                return entry
        return None

    def last(self, kind: str) -> Optional[TraceEntry]:
        """Latest entry of ``kind``, or ``None``."""
        for entry in reversed(self.entries):
            if entry.kind == kind:
                return entry
        return None

    def between(self, start: float, end: float) -> list[TraceEntry]:
        """Entries with ``start <= time < end``."""
        return [e for e in self.entries if start <= e.time < end]

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line dump (most recent ``limit`` rows)."""
        rows = self.entries if limit is None else self.entries[-limit:]
        return "\n".join(str(row) for row in rows)

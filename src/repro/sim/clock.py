"""Independent clock domains.

The paper assumes "individual INCs operate off independent clocks and the
timing of communications on the virtual buses is entirely independent of
these clocks" (Section 2.5).  :class:`ClockDomain` models one such clock:
a nominal period, a fixed per-domain frequency offset, and per-edge jitter.
The RMB cycle controller subscribes to its INC's domain; the correctness
experiments (Lemma 1) drive every INC from a differently-skewed domain and
check that the handshake still bounds cycle skew.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStream


class ClockDomain:
    """A free-running clock delivering edges to one subscriber.

    Args:
        sim: owning simulator.
        period: nominal tick period (> 0).
        offset: phase of the first edge (>= 0).
        drift: multiplicative frequency error; the effective period is
            ``period * (1 + drift)``.  ``drift=-0.05`` runs 5% fast.
        jitter: maximum absolute per-edge jitter, drawn uniformly from
            ``[-jitter, +jitter]`` via ``rng``; clamped so time advances.
        rng: random stream for jitter (required when ``jitter > 0``).
        name: label used in traces.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        offset: float = 0.0,
        drift: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[RandomStream] = None,
        name: str = "clock",
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"clock period must be > 0, got {period}")
        if offset < 0:
            raise ConfigurationError(f"clock offset must be >= 0, got {offset}")
        if drift <= -1.0:
            raise ConfigurationError(f"drift {drift} makes the period non-positive")
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        if jitter > 0 and rng is None:
            raise ConfigurationError("jitter > 0 requires an rng stream")
        effective = period * (1.0 + drift)
        if jitter >= effective:
            raise ConfigurationError(
                f"jitter {jitter} must be smaller than the period {effective}"
            )
        self.sim = sim
        self.name = name
        self.period = period
        self.offset = offset
        self.drift = drift
        self.jitter = jitter
        self.rng = rng
        self.edges_delivered = 0
        self._subscriber: Optional[Callable[[int], None]] = None
        self._stopped = False
        self._started = False

    @property
    def effective_period(self) -> float:
        """Nominal period adjusted for drift (jitter excluded)."""
        return self.period * (1.0 + self.drift)

    def subscribe(self, callback: Callable[[int], None]) -> None:
        """Register the edge handler; called as ``callback(edge_index)``.

        A domain drives exactly one subscriber — that is how the hardware
        works (one clock input per INC) and it keeps edge ordering simple.
        """
        if self._subscriber is not None:
            raise ConfigurationError(f"clock {self.name!r} already has a subscriber")
        self._subscriber = callback

    def start(self) -> None:
        """Begin delivering edges.  Requires a subscriber."""
        if self._subscriber is None:
            raise ConfigurationError(f"clock {self.name!r} started without subscriber")
        if self._started:
            raise ConfigurationError(f"clock {self.name!r} started twice")
        self._started = True
        self.sim.schedule(self.offset + self._next_interval(first=True),
                          self._edge, label=f"{self.name}.edge")

    def stop(self) -> None:
        """Stop delivering edges after any already-scheduled edge."""
        self._stopped = True

    def _next_interval(self, first: bool = False) -> float:
        base = self.effective_period
        if self.jitter > 0 and self.rng is not None:
            base += self.rng.uniform(-self.jitter, self.jitter)
        # Guard against pathological jitter draws; time must advance.
        return max(base, 1e-9)

    def _edge(self) -> None:
        if self._stopped:
            return
        index = self.edges_delivered
        self.edges_delivered += 1
        assert self._subscriber is not None
        self._subscriber(index)
        if not self._stopped:
            self.sim.schedule(self._next_interval(), self._edge,
                              label=f"{self.name}.edge")


def homogeneous_domains(
    sim: Simulator, count: int, period: float
) -> list[ClockDomain]:
    """``count`` identical, phase-aligned domains (synchronous operation)."""
    return [
        ClockDomain(sim, period, name=f"clk{i}") for i in range(count)
    ]


def skewed_domains(
    sim: Simulator,
    count: int,
    period: float,
    rng: RandomStream,
    max_drift: float = 0.05,
    max_jitter_fraction: float = 0.1,
    max_offset_fraction: float = 1.0,
) -> list[ClockDomain]:
    """``count`` independent domains with random phase, drift and jitter.

    This is the clocking model for the asynchronous-RMB experiments: every
    INC's clock differs in phase, speed and edge jitter, exactly the regime
    where the odd/even handshake must still bound cycle skew (Lemma 1).
    """
    domains = []
    for index in range(count):
        domains.append(
            ClockDomain(
                sim,
                period,
                offset=rng.uniform(0.0, period * max_offset_fraction),
                drift=rng.uniform(-max_drift, max_drift),
                jitter=period * max_jitter_fraction,
                rng=rng,
                name=f"clk{index}",
            )
        )
    return domains

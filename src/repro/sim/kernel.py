"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the event queue.  It supports two
styles of use, both employed in this repository:

* **Callback style** — components schedule plain callbacks with
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.  The RMB core
  uses this style for its tick engines.
* **Process style** — generator coroutines that ``yield`` delays or
  :class:`repro.sim.process.Waitable` objects, started with
  :meth:`Simulator.spawn`.  Workload drivers and the baseline network
  simulators use this style.

Time is a float but every built-in component uses integral ticks; the
kernel itself is unit-agnostic.

The hot path is :meth:`Simulator.run`: it pops heap entries directly
instead of calling :meth:`Simulator.step` per event, so dispatching one
event costs a heap pop, one ``None`` check for tracing, and the callback
itself.  Built-in periodic machinery reschedules through the trusted
:meth:`Simulator._schedule_trusted` lane, which skips argument
re-validation (the arguments were validated when the component was
built and cannot go stale).
"""

from __future__ import annotations

import functools
import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventQueue, PRIORITY_NORMAL
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        trace: optional :class:`TraceRecorder` capturing kernel activity.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, trace: Optional[TraceRecorder] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._finished = False
        self.trace = trace
        # Cached at construction (no caller reattaches a recorder to a
        # live simulator): one flag check instead of a record() call per
        # scheduled event when tracing is off or filtered to nothing.
        self._tracing = trace is not None and trace.enabled
        self.events_executed = 0
        self._processes: list[Process] = []
        # Model-level diagnostics providers (picklable callables returning
        # a one-line description) appended to livelock error messages so
        # the report names protocol states, not just event labels.
        self._diagnostics: list[Callable[[], str]] = []

    def __getstate__(self) -> dict:
        """Pickle support for checkpointing.

        A snapshot is taken from *inside* a running event (the checkpoint
        callback), so ``_running`` is True at dump time; the restored
        simulator must accept a fresh :meth:`run` call.  Live generator
        processes cannot be pickled — checkpointing is defined for the
        callback-style RMB machinery only.
        """
        if any(not p.finished for p in self._processes):
            raise SimulationError(
                "cannot checkpoint a simulator with live generator "
                "processes; only callback-style simulations snapshot"
            )
        state = dict(self.__dict__)
        state["_running"] = False
        state["_processes"] = []
        return state

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def metrics_snapshot(self) -> dict[str, float]:
        """Kernel state for observability scrapes (read-only)."""
        return {
            "events_executed": float(self.events_executed),
            "pending_events": float(self.pending_events),
            "now": self._now,
        }

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time!r}, current time is {self._now!r}"
            )
        event = self._queue.push(time, callback, priority, label)
        if self._tracing:
            self.trace.record(self._now, "schedule", label or callback.__name__,
                              at=time)
        return event

    def _schedule_trusted(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int,
        label: str,
    ) -> Event:
        """Fast lane for built-in components (periodics, processes).

        Identical semantics to :meth:`schedule` for non-negative delays,
        minus the re-validation: callers on this path are kernel-owned
        machinery whose delays were validated at construction time.
        """
        time = self._now + delay
        event = self._queue.push(time, callback, priority, label)
        if self._tracing:
            self.trace.record(self._now, "schedule", label or callback.__name__,
                              at=time)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Any, name: str = "") -> Process:
        """Start a generator coroutine as a simulation process.

        The generator may ``yield``:

        * a number — sleep that many time units;
        * a :class:`repro.sim.process.Waitable` — resume when it fires;
        * another :class:`Process` — resume when that process completes.
        """
        process = Process(self, generator, name=name)
        self._processes.append(process)
        process.start()
        return process

    def alive_processes(self) -> list[Process]:
        """Return processes that have not yet completed."""
        return [p for p in self._processes if not p.finished]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> float:
        """Execute exactly one event and return the new simulation time.

        Raises:
            SchedulingError: if no events remain.
        """
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue returned an event in the past")
        self._now = event.time
        if self._tracing:
            self.trace.record(self._now, "fire", event.label)
        event.callback()
        self.events_executed += 1
        return self._now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event cap.

        Args:
            until: stop once the next event lies strictly beyond this time;
                the clock is advanced to ``until``.
            max_events: safety valve for tests; raise once this many events
                have executed and more remain.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        executed = 0
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        # Hoisted locals: the no-trace path costs one flag check per event.
        trace = self.trace
        tracing = self._tracing
        try:
            while heap:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(self._livelock_diagnostics(max_events))
                heappop(heap)
                queue._live -= 1
                self._now = time
                if tracing:
                    trace.record(time, "fire", event.label)
                event.callback()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self.events_executed += executed

    def add_diagnostic(self, provider: Callable[[], str]) -> None:
        """Register a model-state describer for livelock error messages.

        Providers must be picklable (bound methods of checkpointable
        objects or callable classes, not closures) so a restored
        simulator keeps its diagnostics.
        """
        self._diagnostics.append(provider)

    def _livelock_diagnostics(self, max_events: int) -> str:
        """Describe the stuck state: clock and the imminent event labels."""
        upcoming = ", ".join(
            f"{event.label or '<unlabelled>'}@{event.time:g}"
            for event in self._queue.peek_events(5)
        )
        message = (
            f"exceeded max_events={max_events} at t={self._now:g}; "
            f"possible livelock in the model (next events: {upcoming})"
        )
        for provider in self._diagnostics:
            try:
                message += f"; {provider()}"
            except Exception:  # pragma: no cover - diagnostics never mask
                continue
        return message

    def run_ticks(self, ticks: float) -> None:
        """Convenience: advance the clock by ``ticks`` from the current time."""
        self.run(until=self._now + ticks)


class SimClock:
    """A picklable callable returning its simulator's current time.

    Engines that only need ``now()`` take this instead of a bound lambda,
    so the whole object graph of a ring remains serialisable for
    checkpoint/restore (closures defeat pickle; instances do not).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def __call__(self) -> float:
        return self._sim.now


class SimScheduler:
    """A picklable callable scheduling relative-delay events.

    The routing engine's retry timers go through this instead of a lambda
    over :meth:`Simulator.schedule`, for the same checkpointing reason as
    :class:`SimClock`.
    """

    def __init__(self, sim: Simulator, label: str = "") -> None:
        self._sim = sim
        self._label = label

    def __call__(self, delay: float, callback: Callable[[], Any]) -> Event:
        return self._sim.schedule(delay, callback, label=self._label)


class Periodic:
    """A self-rescheduling periodic callback (the engine behind ``every``).

    Instances are plain picklable objects — their pending event holds a
    bound method, not a closure — so periodic machinery (flit ticks,
    probes, watchdog sweeps) survives checkpoint/restore intact.

    ``reschedule_first=False`` (the default) runs the callback before
    pushing the next occurrence, preserving the historical event ordering
    of the closure-based ``every``.  The checkpoint writer sets it True so
    that the *next* periodic occurrence is already queued when the
    snapshot is taken mid-callback; otherwise a restored run would never
    see the periodic fire again.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
        reschedule_first: bool = False,
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._priority = priority
        self._label = label
        self._reschedule_first = reschedule_first
        self._stopped = False
        first = period if start is None else max(0.0, start - sim.now)
        self._event: Optional[Event] = sim._schedule_trusted(
            first, self._fire, priority, label
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        if self._reschedule_first:
            self._event = self._sim._schedule_trusted(
                self._period, self._fire, self._priority, self._label
            )
            self._callback()
            return
        self._callback()
        if not self._stopped:
            self._event = self._sim._schedule_trusted(
                self._period, self._fire, self._priority, self._label
            )

    def stop(self) -> None:
        """Cancel the pending occurrence and stop rescheduling."""
        self._stopped = True
        if self._event is not None and not self._event.cancelled:
            self._sim.cancel(self._event)

    def __call__(self) -> None:
        # ``every`` historically returned a stop *function*; keeping the
        # instance callable preserves that contract.
        self.stop()


def every(
    sim: Simulator,
    period: float,
    callback: Callable[[], Any],
    start: Optional[float] = None,
    priority: int = PRIORITY_NORMAL,
    label: str = "",
) -> Periodic:
    """Schedule ``callback`` periodically; return a canceller.

    Used by the RMB tick engines and by monitors.  The callback runs first
    at ``start`` (default: one period from now) and then every ``period``
    units until the returned canceller is invoked (either call it, or call
    its :meth:`Periodic.stop`).
    """
    return Periodic(sim, period, callback, start, priority, label)


def at_times(
    sim: Simulator,
    times: Iterable[float],
    callback: Callable[[float], Any],
    label: str = "",
) -> list[Event]:
    """Schedule ``callback(time)`` at each absolute time; return the events.

    Used by the fault-injection layer to arm a :class:`FaultPlan`'s event
    schedule in one call.  Times at or before the current clock fire at
    the current time (a plan may legitimately start at t=0).  The returned
    events can be cancelled individually via :meth:`Simulator.cancel`.
    """
    events = []
    for time in sorted(times):
        fire_at = max(time, sim.now)
        events.append(sim.schedule_at(fire_at, functools.partial(callback, time),
                                      label=label))
    return events


def run_all(simulators: Iterable[Simulator], until: float) -> None:
    """Run several independent simulators to the same horizon (test helper)."""
    for simulator in simulators:
        simulator.run(until=until)

"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the event queue.  It supports two
styles of use, both employed in this repository:

* **Callback style** — components schedule plain callbacks with
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.  The RMB core
  uses this style for its tick engines.
* **Process style** — generator coroutines that ``yield`` delays or
  :class:`repro.sim.process.Waitable` objects, started with
  :meth:`Simulator.spawn`.  Workload drivers and the baseline network
  simulators use this style.

Time is a float but every built-in component uses integral ticks; the
kernel itself is unit-agnostic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventQueue, PRIORITY_NORMAL
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        trace: optional :class:`TraceRecorder` capturing kernel activity.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, trace: Optional[TraceRecorder] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._finished = False
        self.trace = trace
        self._processes: list[Process] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time!r}, current time is {self._now!r}"
            )
        event = self._queue.push(time, callback, priority, label)
        if self.trace is not None:
            self.trace.record(self._now, "schedule", label or callback.__name__,
                              at=time)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Any, name: str = "") -> Process:
        """Start a generator coroutine as a simulation process.

        The generator may ``yield``:

        * a number — sleep that many time units;
        * a :class:`repro.sim.process.Waitable` — resume when it fires;
        * another :class:`Process` — resume when that process completes.
        """
        process = Process(self, generator, name=name)
        self._processes.append(process)
        process.start()
        return process

    def alive_processes(self) -> list[Process]:
        """Return processes that have not yet completed."""
        return [p for p in self._processes if not p.finished]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> float:
        """Execute exactly one event and return the new simulation time.

        Raises:
            SchedulingError: if no events remain.
        """
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue returned an event in the past")
        self._now = event.time
        if self.trace is not None:
            self.trace.record(self._now, "fire", event.label)
        event.callback()
        return self._now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event cap.

        Args:
            until: stop once the next event lies strictly beyond this time;
                the clock is advanced to ``until``.
            max_events: safety valve for tests; raise if exceeded.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        executed = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "possible livelock in the model"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_ticks(self, ticks: float) -> None:
        """Convenience: advance the clock by ``ticks`` from the current time."""
        self.run(until=self._now + ticks)


def every(
    sim: Simulator,
    period: float,
    callback: Callable[[], Any],
    start: Optional[float] = None,
    priority: int = PRIORITY_NORMAL,
    label: str = "",
) -> Callable[[], None]:
    """Schedule ``callback`` periodically; return a function that stops it.

    Used by the RMB tick engines and by monitors.  The callback runs first
    at ``start`` (default: one period from now) and then every ``period``
    units until the returned canceller is invoked.
    """
    if period <= 0:
        raise SchedulingError(f"period must be positive, got {period!r}")
    state: dict[str, Any] = {"stopped": False, "event": None}

    def fire() -> None:
        if state["stopped"]:
            return
        callback()
        if not state["stopped"]:
            state["event"] = sim.schedule(period, fire, priority, label)

    first = period if start is None else max(0.0, start - sim.now)
    state["event"] = sim.schedule(first, fire, priority, label)

    def stop() -> None:
        state["stopped"] = True
        if state["event"] is not None:
            sim.cancel(state["event"])

    return stop


def at_times(
    sim: Simulator,
    times: Iterable[float],
    callback: Callable[[float], Any],
    label: str = "",
) -> list[Event]:
    """Schedule ``callback(time)`` at each absolute time; return the events.

    Used by the fault-injection layer to arm a :class:`FaultPlan`'s event
    schedule in one call.  Times at or before the current clock fire at
    the current time (a plan may legitimately start at t=0).  The returned
    events can be cancelled individually via :meth:`Simulator.cancel`.
    """
    events = []
    for time in sorted(times):
        fire_at = max(time, sim.now)

        def fire(at: float = time) -> None:
            callback(at)

        events.append(sim.schedule_at(fire_at, fire, label=label))
    return events


def run_all(simulators: Iterable[Simulator], until: float) -> None:
    """Run several independent simulators to the same horizon (test helper)."""
    for simulator in simulators:
        simulator.run(until=until)

"""Measurement probes: time series, counters, and summary statistics.

These are deliberately simple, dependency-free accumulators; every
benchmark builds its reported rows from them.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.sim.kernel import Simulator, every


class Counter:
    """A named monotone counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount


class Tally:
    """Streaming summary of a sample set: count / mean / variance / extremes.

    Uses Welford's algorithm so long benchmark runs stay numerically stable.
    """

    def __init__(self, name: str = "tally") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Tally") -> None:
        """Fold another tally into this one (parallel-run aggregation)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "total": self.total,
        }


class TimeSeries:
    """A sampled ``(time, value)`` series with integral statistics."""

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def time_average(self) -> float:
        """Time-weighted average, treating values as step functions."""
        if len(self.times) < 2:
            return self.values[0] if self.values else 0.0
        area = 0.0
        for index in range(len(self.times) - 1):
            span = self.times[index + 1] - self.times[index]
            area += self.values[index] * span
        duration = self.times[-1] - self.times[0]
        return area / duration if duration > 0 else self.values[-1]

    def peak(self) -> float:
        return max(self.values) if self.values else 0.0


class RateMeter:
    """Samples the *rate of change* of a monotone counter into a series.

    Every ``period`` ticks the meter reads ``observe_total()`` (e.g.
    cumulative flits delivered) and records the per-tick rate over the
    window just ended.  The degraded-mode experiments use this to watch
    residual throughput through fault and repair events.
    """

    def __init__(self, sim: Simulator, period: float,
                 observe_total: Callable[[], float],
                 name: str = "rate") -> None:
        self.series = TimeSeries(name=name)
        self._sim = sim
        self._observe = observe_total
        self._period = period
        self._last = observe_total()
        self._stop = every(sim, period, self._sample,
                           label=f"{name}.sample")

    def _sample(self) -> None:
        current = self._observe()
        self.series.record(self._sim.now, (current - self._last) / self._period)
        self._last = current

    def stop(self) -> None:
        self._stop()

    def minimum(self) -> float:
        """Lowest rate observed (0 when nothing was sampled)."""
        return min(self.series.values) if self.series.values else 0.0


class PeriodicProbe:
    """Samples ``observe()`` into a :class:`TimeSeries` every ``period``.

    Used to track, e.g., lane occupancy and live virtual-bus counts during
    the RMB experiments.
    """

    def __init__(self, sim: Simulator, period: float,
                 observe: Callable[[], float], name: str = "probe") -> None:
        self.series = TimeSeries(name=name)
        self._observe = observe
        self._sim = sim
        self._stop = every(sim, period, self._sample,
                           label=f"{name}.sample")

    def _sample(self) -> None:
        self.series.record(self._sim.now, self._observe())

    def stop(self) -> None:
        self._stop()


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty list")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight

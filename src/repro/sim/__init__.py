"""Discrete-event simulation substrate.

A self-contained kernel (events, processes, resources), clock domains with
skew/jitter for modelling asynchronous hardware, deterministic named random
streams, tracing, and measurement probes.
"""

from repro.sim.clock import ClockDomain, homogeneous_domains, skewed_domains
from repro.sim.events import (
    Event,
    EventQueue,
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
)
from repro.sim.kernel import Simulator, every
from repro.sim.monitor import Counter, PeriodicProbe, Tally, TimeSeries, percentile
from repro.sim.process import Process, Waitable, all_of, any_of
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStream, SeedSequence
from repro.sim.trace import TraceEntry, TraceRecorder

__all__ = [
    "ClockDomain",
    "Counter",
    "Event",
    "EventQueue",
    "PRIORITY_EARLY",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "PeriodicProbe",
    "Process",
    "RandomStream",
    "Resource",
    "SeedSequence",
    "Simulator",
    "Store",
    "Tally",
    "TimeSeries",
    "TraceEntry",
    "TraceRecorder",
    "Waitable",
    "all_of",
    "any_of",
    "every",
    "homogeneous_domains",
    "percentile",
    "skewed_domains",
]

"""Stochastic arrival processes and message-size models.

The paper evaluates capability analytically; the behavioural benchmarks
additionally sweep offered load, which needs arrival processes.  These are
the standard ones for interconnect studies: Bernoulli/Poisson per-node
injection with uniform, hot-spot, or locality-biased destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.core.flits import Message
from repro.errors import WorkloadError
from repro.sim.rng import RandomStream

#: Destination chooser: (source, rng) -> destination.
DestinationFn = Callable[[int, RandomStream], int]


def uniform_destinations(nodes: int) -> DestinationFn:
    """Uniform over all nodes except the source."""

    def choose(source: int, rng: RandomStream) -> int:
        destination = rng.randint(0, nodes - 2)
        return destination if destination < source else destination + 1

    return choose


def hotspot_destinations(nodes: int, hotspot: int,
                         fraction: float) -> DestinationFn:
    """With probability ``fraction`` send to ``hotspot``, else uniform."""
    if not 0 <= hotspot < nodes:
        raise WorkloadError(f"hotspot {hotspot} outside 0..{nodes - 1}")
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    uniform = uniform_destinations(nodes)

    def choose(source: int, rng: RandomStream) -> int:
        if source != hotspot and rng.random() < fraction:
            return hotspot
        return uniform(source, rng)

    return choose


def local_destinations(nodes: int, reach: int) -> DestinationFn:
    """Uniform over the next ``reach`` clockwise neighbours.

    Ring-friendly locality: the traffic class the RMB's constant-length
    wires and segment reuse are designed for.
    """
    if not 1 <= reach < nodes:
        raise WorkloadError(f"reach must be in 1..{nodes - 1}, got {reach}")

    def choose(source: int, rng: RandomStream) -> int:
        return (source + rng.randint(1, reach)) % nodes

    return choose


@dataclass
class ArrivalSchedule:
    """A concrete list of (time, message) injections, pre-generated so the
    identical workload can be replayed against different networks."""

    entries: list[tuple[float, Message]]

    def __iter__(self) -> Iterator[tuple[float, Message]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def messages(self) -> list[Message]:
        return [message for _, message in self.entries]

    def horizon(self) -> float:
        return self.entries[-1][0] if self.entries else 0.0


def bernoulli_schedule(
    nodes: int,
    duration: int,
    injection_rate: float,
    data_flits: int,
    rng: RandomStream,
    destinations: Optional[DestinationFn] = None,
    start_id: int = 0,
) -> ArrivalSchedule:
    """Per-node Bernoulli injection: each tick each node fires a message
    with probability ``injection_rate`` (messages per node per tick)."""
    if not 0.0 <= injection_rate <= 1.0:
        raise WorkloadError(
            f"injection_rate must be in [0, 1], got {injection_rate}"
        )
    choose = destinations if destinations is not None else \
        uniform_destinations(nodes)
    entries = []
    next_id = start_id
    for tick in range(duration):
        for node in range(nodes):
            if rng.random() < injection_rate:
                destination = choose(node, rng)
                entries.append((
                    float(tick),
                    Message(message_id=next_id, source=node,
                            destination=destination, data_flits=data_flits,
                            created_at=float(tick)),
                ))
                next_id += 1
    return ArrivalSchedule(entries)


def poisson_schedule(
    nodes: int,
    duration: float,
    rate_per_node: float,
    data_flits: int,
    rng: RandomStream,
    destinations: Optional[DestinationFn] = None,
    start_id: int = 0,
) -> ArrivalSchedule:
    """Per-node Poisson arrivals with exponential inter-arrival times."""
    if rate_per_node <= 0:
        raise WorkloadError(f"rate must be positive, got {rate_per_node}")
    choose = destinations if destinations is not None else \
        uniform_destinations(nodes)
    entries = []
    next_id = start_id
    for node in range(nodes):
        node_rng = rng.fork(f"node{node}")
        time = node_rng.expovariate(rate_per_node)
        while time < duration:
            destination = choose(node, node_rng)
            entries.append((
                time,
                Message(message_id=next_id, source=node,
                        destination=destination, data_flits=data_flits,
                        created_at=time),
            ))
            next_id += 1
            time += node_rng.expovariate(rate_per_node)
    entries.sort(key=lambda entry: (entry[0], entry[1].message_id))
    return ArrivalSchedule(entries)

"""Stochastic arrival processes and message-size models.

The paper evaluates capability analytically; the behavioural benchmarks
additionally sweep offered load, which needs arrival processes.  These are
the standard ones for interconnect studies — Bernoulli/Poisson per-node
injection with uniform, hot-spot, or locality-biased destinations — plus
two "millions of users" shapes for the service-scale experiments: a
two-state MMPP (bursty on/off sources) and a diurnal sinusoid-modulated
Poisson process.

Every generator is deterministic in ``(seed, name)`` through the named
:class:`~repro.sim.rng.RandomStream` forks, so the identical workload can
be replayed against different networks and backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.core.flits import Message
from repro.errors import WorkloadError
from repro.sim.rng import RandomStream

#: Destination chooser: (source, rng) -> destination.
DestinationFn = Callable[[int, RandomStream], int]


def uniform_destinations(nodes: int) -> DestinationFn:
    """Uniform over all nodes except the source.

    Raises:
        WorkloadError: for ``nodes < 2`` — a one-node network has no
            non-self destination to pick (drawing would otherwise reach
            ``randint(0, -1)`` deep inside a schedule generator).
    """
    if nodes < 2:
        raise WorkloadError(
            f"uniform destinations need at least 2 nodes (no non-self "
            f"destination exists), got {nodes}"
        )

    def choose(source: int, rng: RandomStream) -> int:
        destination = rng.randint(0, nodes - 2)
        return destination if destination < source else destination + 1

    return choose


def hotspot_destinations(nodes: int, hotspot: int,
                         fraction: float) -> DestinationFn:
    """With probability ``fraction`` send to ``hotspot``, else uniform."""
    if not 0 <= hotspot < nodes:
        raise WorkloadError(f"hotspot {hotspot} outside 0..{nodes - 1}")
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    uniform = uniform_destinations(nodes)

    def choose(source: int, rng: RandomStream) -> int:
        if source != hotspot and rng.random() < fraction:
            return hotspot
        return uniform(source, rng)

    return choose


def local_destinations(nodes: int, reach: int) -> DestinationFn:
    """Uniform over the next ``reach`` clockwise neighbours.

    Ring-friendly locality: the traffic class the RMB's constant-length
    wires and segment reuse are designed for.
    """
    if not 1 <= reach < nodes:
        raise WorkloadError(f"reach must be in 1..{nodes - 1}, got {reach}")

    def choose(source: int, rng: RandomStream) -> int:
        return (source + rng.randint(1, reach)) % nodes

    return choose


@dataclass
class ArrivalSchedule:
    """A concrete list of (time, message) injections, pre-generated so the
    identical workload can be replayed against different networks."""

    entries: list[tuple[float, Message]]

    def __iter__(self) -> Iterator[tuple[float, Message]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def messages(self) -> list[Message]:
        return [message for _, message in self.entries]

    def horizon(self) -> float:
        return self.entries[-1][0] if self.entries else 0.0


def _check_nodes(nodes: int) -> None:
    if nodes < 1:
        raise WorkloadError(f"need at least 1 node, got {nodes}")


def _resolve_sources(nodes: int,
                     sources: Optional[Sequence[int]]) -> list[int]:
    """Validate an explicit injector set (default: every node)."""
    if sources is None:
        return list(range(nodes))
    resolved = list(sources)
    for node in resolved:
        if not 0 <= node < nodes:
            raise WorkloadError(
                f"injection source {node} outside 0..{nodes - 1}"
            )
    if len(set(resolved)) != len(resolved):
        raise WorkloadError("injection sources must be distinct")
    return resolved


def bernoulli_schedule(
    nodes: int,
    duration: int,
    injection_rate: float,
    data_flits: int,
    rng: RandomStream,
    destinations: Optional[DestinationFn] = None,
    start_id: int = 0,
    sources: Optional[Sequence[int]] = None,
) -> ArrivalSchedule:
    """Per-node Bernoulli injection: each tick each node fires a message
    with probability ``injection_rate`` (messages per node per tick)."""
    _check_nodes(nodes)
    if not 0.0 <= injection_rate <= 1.0:
        raise WorkloadError(
            f"injection_rate must be in [0, 1], got {injection_rate}"
        )
    choose = destinations if destinations is not None else \
        uniform_destinations(nodes)
    injectors = _resolve_sources(nodes, sources)
    entries = []
    next_id = start_id
    for tick in range(duration):
        for node in injectors:
            if rng.random() < injection_rate:
                destination = choose(node, rng)
                entries.append((
                    float(tick),
                    Message(message_id=next_id, source=node,
                            destination=destination, data_flits=data_flits,
                            created_at=float(tick)),
                ))
                next_id += 1
    return ArrivalSchedule(entries)


def poisson_schedule(
    nodes: int,
    duration: float,
    rate_per_node: float,
    data_flits: int,
    rng: RandomStream,
    destinations: Optional[DestinationFn] = None,
    start_id: int = 0,
    sources: Optional[Sequence[int]] = None,
) -> ArrivalSchedule:
    """Per-node Poisson arrivals with exponential inter-arrival times."""
    _check_nodes(nodes)
    if rate_per_node <= 0:
        raise WorkloadError(f"rate must be positive, got {rate_per_node}")
    choose = destinations if destinations is not None else \
        uniform_destinations(nodes)
    entries = []
    next_id = start_id
    for node in _resolve_sources(nodes, sources):
        node_rng = rng.fork(f"node{node}")
        time = node_rng.expovariate(rate_per_node)
        while time < duration:
            destination = choose(node, node_rng)
            entries.append((
                time,
                Message(message_id=next_id, source=node,
                        destination=destination, data_flits=data_flits,
                        created_at=time),
            ))
            next_id += 1
            time += node_rng.expovariate(rate_per_node)
    entries.sort(key=lambda entry: (entry[0], entry[1].message_id))
    return ArrivalSchedule(entries)


def mmpp_schedule(
    nodes: int,
    duration: float,
    on_rate: float,
    data_flits: int,
    rng: RandomStream,
    destinations: Optional[DestinationFn] = None,
    mean_on: float = 50.0,
    mean_off: float = 150.0,
    off_rate: float = 0.0,
    start_id: int = 0,
    sources: Optional[Sequence[int]] = None,
) -> ArrivalSchedule:
    """Two-state Markov-modulated Poisson arrivals (bursty on/off users).

    Each node alternates exponentially-distributed ON phases (Poisson
    arrivals at ``on_rate``) and OFF phases (``off_rate``, usually 0).
    The long-run mean rate is
    ``(on_rate * mean_on + off_rate * mean_off) / (mean_on + mean_off)``;
    the burst structure is what distinguishes the process from a plain
    Poisson stream of the same mean.  Deterministic per node via the
    named ``rng.fork(f"node{i}")`` streams.
    """
    _check_nodes(nodes)
    if on_rate <= 0:
        raise WorkloadError(f"on_rate must be positive, got {on_rate}")
    if off_rate < 0 or off_rate > on_rate:
        raise WorkloadError(
            f"off_rate must be in [0, on_rate], got {off_rate}"
        )
    if mean_on <= 0 or mean_off <= 0:
        raise WorkloadError(
            f"phase lengths must be positive, got mean_on={mean_on}, "
            f"mean_off={mean_off}"
        )
    choose = destinations if destinations is not None else \
        uniform_destinations(nodes)
    entries = []
    next_id = start_id
    on_share = mean_on / (mean_on + mean_off)
    for node in _resolve_sources(nodes, sources):
        node_rng = rng.fork(f"node{node}")
        # Start in the stationary phase mix so the burst structure has no
        # start-of-run transient.
        on = node_rng.random() < on_share
        time = 0.0
        phase_end = node_rng.expovariate(1.0 / (mean_on if on else mean_off))
        while time < duration:
            rate = on_rate if on else off_rate
            if rate > 0.0:
                step = node_rng.expovariate(rate)
                if time + step < min(phase_end, duration):
                    time += step
                    destination = choose(node, node_rng)
                    entries.append((
                        time,
                        Message(message_id=next_id, source=node,
                                destination=destination,
                                data_flits=data_flits, created_at=time),
                    ))
                    next_id += 1
                    continue
            # No arrival before the phase boundary: jump phases.  The
            # discarded partial inter-arrival draw is statistically free
            # (exponential memorylessness).
            time = phase_end
            on = not on
            phase_end = time + node_rng.expovariate(
                1.0 / (mean_on if on else mean_off))
    entries.sort(key=lambda entry: (entry[0], entry[1].message_id))
    return ArrivalSchedule(entries)


def diurnal_schedule(
    nodes: int,
    duration: float,
    peak_rate: float,
    data_flits: int,
    rng: RandomStream,
    destinations: Optional[DestinationFn] = None,
    period: float = 500.0,
    trough_fraction: float = 0.1,
    start_id: int = 0,
    sources: Optional[Sequence[int]] = None,
) -> ArrivalSchedule:
    """Sinusoid-modulated Poisson arrivals (a compressed day/night cycle).

    The instantaneous per-node rate follows
    ``peak_rate * (trough + (1 - trough) * (1 - cos(2*pi*t/period)) / 2)``
    — the run starts at the trough ("night"), peaks mid-period, and
    returns.  Implemented by Lewis-Shedler thinning of a ``peak_rate``
    Poisson stream, so determinism reduces to the per-node named streams
    exactly as for :func:`poisson_schedule`.
    """
    _check_nodes(nodes)
    if peak_rate <= 0:
        raise WorkloadError(f"peak_rate must be positive, got {peak_rate}")
    if period <= 0:
        raise WorkloadError(f"period must be positive, got {period}")
    if not 0.0 < trough_fraction <= 1.0:
        raise WorkloadError(
            f"trough_fraction must be in (0, 1], got {trough_fraction}"
        )
    choose = destinations if destinations is not None else \
        uniform_destinations(nodes)

    def modulation(time: float) -> float:
        wave = 0.5 * (1.0 - math.cos(2.0 * math.pi * time / period))
        return trough_fraction + (1.0 - trough_fraction) * wave

    entries = []
    next_id = start_id
    for node in _resolve_sources(nodes, sources):
        node_rng = rng.fork(f"node{node}")
        time = node_rng.expovariate(peak_rate)
        while time < duration:
            if node_rng.random() < modulation(time):
                destination = choose(node, node_rng)
                entries.append((
                    time,
                    Message(message_id=next_id, source=node,
                            destination=destination, data_flits=data_flits,
                            created_at=time),
                ))
                next_id += 1
            time += node_rng.expovariate(peak_rate)
    entries.sort(key=lambda entry: (entry[0], entry[1].message_id))
    return ArrivalSchedule(entries)

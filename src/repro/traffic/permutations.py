"""Permutation families — the workloads of the paper's Section 3 metric.

The paper's comparison metric is *k-permutation capability*: "an RMB with
k buses can support any k-permutation, where a k-permutation allows any
arbitrary k messages to pass through the RMB concurrently."  These
generators provide the permutations the interconnection-network
literature of the era evaluates on, plus ring-specific stress cases.

All functions return a list ``perm`` with ``perm[i]`` the destination of
node ``i``; fixed points (``perm[i] == i``) denote "no message".
"""

from __future__ import annotations

from typing import Optional

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream


def _require_power_of_two(nodes: int, name: str) -> int:
    bits = nodes.bit_length() - 1
    if nodes <= 0 or 1 << bits != nodes:
        raise WorkloadError(
            f"{name} permutation needs a power-of-two node count, got {nodes}"
        )
    return bits


def identity(nodes: int) -> list[int]:
    """No communication at all (useful as a base case in tests)."""
    return list(range(nodes))


def random_permutation(nodes: int, rng: RandomStream) -> list[int]:
    """A uniformly random permutation."""
    return rng.permutation(nodes)


def random_derangement(nodes: int, rng: RandomStream,
                       max_attempts: int = 1_000) -> list[int]:
    """A random permutation with no fixed points (every node sends)."""
    if nodes < 2:
        raise WorkloadError("derangement needs at least 2 nodes")
    for _ in range(max_attempts):
        perm = rng.permutation(nodes)
        if all(perm[i] != i for i in range(nodes)):
            return perm
    raise WorkloadError("failed to sample a derangement")  # pragma: no cover


def bit_reversal(nodes: int) -> list[int]:
    """``i -> reverse of i's bits`` — the classic adversarial pattern."""
    bits = _require_power_of_two(nodes, "bit-reversal")
    perm = []
    for node in range(nodes):
        reversed_bits = 0
        for bit in range(bits):
            if node & (1 << bit):
                reversed_bits |= 1 << (bits - 1 - bit)
        perm.append(reversed_bits)
    return perm


def bit_complement(nodes: int) -> list[int]:
    """``i -> ~i`` — maximal-distance pattern on cubes and meshes."""
    _require_power_of_two(nodes, "bit-complement")
    return [nodes - 1 - node for node in range(nodes)]


def perfect_shuffle(nodes: int) -> list[int]:
    """``i -> rotate-left(i)`` — the FFT/sorting-network pattern."""
    bits = _require_power_of_two(nodes, "perfect-shuffle")
    perm = []
    for node in range(nodes):
        rotated = ((node << 1) | (node >> (bits - 1))) & (nodes - 1)
        perm.append(rotated)
    return perm


def transpose(nodes: int) -> list[int]:
    """Matrix transpose: swap high and low halves of the address bits."""
    bits = _require_power_of_two(nodes, "transpose")
    if bits % 2 != 0:
        raise WorkloadError(
            f"transpose needs an even number of address bits, got {bits}"
        )
    half = bits // 2
    mask = (1 << half) - 1
    return [((node & mask) << half) | (node >> half) for node in range(nodes)]


def butterfly(nodes: int) -> list[int]:
    """Swap the most and least significant address bits."""
    bits = _require_power_of_two(nodes, "butterfly")
    high = 1 << (bits - 1)
    perm = []
    for node in range(nodes):
        top = (node & high) >> (bits - 1)
        bottom = node & 1
        swapped = (node & ~(high | 1)) | (bottom << (bits - 1)) | top
        perm.append(swapped)
    return perm


def ring_shift(nodes: int, distance: int = 1) -> list[int]:
    """``i -> i + distance (mod N)`` — uniform-span ring traffic.

    ``distance=1`` is the RMB's best case (every message one segment);
    ``distance = N - 1`` its single-ring worst case.
    """
    if distance % nodes == 0:
        raise WorkloadError(
            f"ring shift by {distance} on {nodes} nodes is the identity"
        )
    return [(node + distance) % nodes for node in range(nodes)]


def tornado(nodes: int) -> list[int]:
    """``i -> i + floor(N/2) - 1`` — the classic ring adversary."""
    distance = max(1, nodes // 2 - 1)
    return ring_shift(nodes, distance)


def neighbor_exchange(nodes: int) -> list[int]:
    """Pairwise swap ``2j <-> 2j+1`` — shortest possible messages."""
    if nodes % 2 != 0:
        raise WorkloadError("neighbour exchange needs an even node count")
    perm = []
    for node in range(nodes):
        perm.append(node + 1 if node % 2 == 0 else node - 1)
    return perm


#: Named catalogue used by benchmarks and the CLI examples.
FAMILIES = {
    "random": random_permutation,
    "derangement": random_derangement,
    "bit-reversal": bit_reversal,
    "bit-complement": bit_complement,
    "shuffle": perfect_shuffle,
    "transpose": transpose,
    "butterfly": butterfly,
    "ring-shift": ring_shift,
    "tornado": tornado,
    "neighbor": neighbor_exchange,
}


def generate(family: str, nodes: int,
             rng: Optional[RandomStream] = None) -> list[int]:
    """Generate a named permutation (random families need ``rng``)."""
    if family not in FAMILIES:
        raise WorkloadError(
            f"unknown permutation family {family!r}; "
            f"choose from {sorted(FAMILIES)}"
        )
    generator = FAMILIES[family]
    if family in ("random", "derangement"):
        if rng is None:
            raise WorkloadError(f"{family!r} needs a RandomStream")
        return generator(nodes, rng)
    return generator(nodes)


def is_permutation(perm: list[int]) -> bool:
    """True iff ``perm`` is a bijection on ``range(len(perm))``."""
    return sorted(perm) == list(range(len(perm)))

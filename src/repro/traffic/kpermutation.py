"""k-permutations — the paper's capability metric, made executable.

"An RMB with h buses can support any h-permutation where a h-permutation
allows any arbitrary k messages to pass through the RMB concurrently."
A k-permutation here is a set of at most ``k`` simultaneous messages with
distinct sources and distinct destinations.

For a *ring*, the binding constraint is per-segment load: a set of
clockwise arcs can be carried simultaneously iff no segment is crossed by
more than ``k`` arcs.  :func:`ring_load` computes that load profile and is
the ground truth for experiment E13 (the RMB carries any message set of
ring load <= k concurrently) and for the offline-optimal scheduler.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream


def validate_kpermutation(pairs: Sequence[tuple[int, int]], nodes: int) -> None:
    """Raise unless sources are distinct, destinations are distinct, and
    every endpoint is a valid node."""
    sources = [source for source, _ in pairs]
    destinations = [destination for _, destination in pairs]
    if len(set(sources)) != len(sources):
        raise WorkloadError("k-permutation sources must be distinct")
    if len(set(destinations)) != len(destinations):
        raise WorkloadError("k-permutation destinations must be distinct")
    for source, destination in pairs:
        if not (0 <= source < nodes and 0 <= destination < nodes):
            raise WorkloadError(
                f"pair ({source}, {destination}) outside 0..{nodes - 1}"
            )
        if source == destination:
            raise WorkloadError(f"pair ({source}, {destination}) is a no-op")


def random_kpermutation(nodes: int, k: int,
                        rng: RandomStream) -> list[tuple[int, int]]:
    """``k`` random messages with distinct sources and destinations."""
    if not 1 <= k <= nodes:
        raise WorkloadError(f"k must be in 1..{nodes}, got {k}")
    sources = rng.sample(range(nodes), k)
    while True:
        destinations = rng.sample(range(nodes), k)
        if all(s != d for s, d in zip(sources, destinations)):
            return list(zip(sources, destinations))


def ring_load(pairs: Sequence[tuple[int, int]], nodes: int) -> list[int]:
    """Clockwise arc load per ring segment.

    ``load[i]`` counts the messages whose clockwise path crosses segment
    ``i`` (the wire bundle from node ``i`` to ``i + 1``).  Computed with a
    circular prefix sum, O(N + M).
    """
    delta = [0] * nodes
    wraps = 0
    for source, destination in pairs:
        if source == destination:
            continue
        delta[source] += 1
        delta[destination] -= 1
        if destination < source:
            wraps += 1
    load = []
    running = wraps
    for segment in range(nodes):
        running += delta[segment]
        load.append(running)
    return load


def max_ring_load(pairs: Sequence[tuple[int, int]], nodes: int) -> int:
    """The peak segment load — the minimum lane count that could ever
    carry all of ``pairs`` concurrently on a clockwise ring."""
    if not pairs:
        return 0
    return max(ring_load(pairs, nodes))


def bounded_load_pairs(nodes: int, k: int, rng: RandomStream,
                       attempts: int = 10_000) -> list[tuple[int, int]]:
    """A random k-permutation whose ring load is exactly <= k.

    Used by E13: such a set must be carried fully concurrently by an RMB
    with ``k`` lanes.  Sampling simply rejects overloaded draws; for
    ``k <= nodes / 4`` acceptance is high because expected load is ``k/2``.
    """
    for _ in range(attempts):
        pairs = random_kpermutation(nodes, k, rng)
        if max_ring_load(pairs, nodes) <= k:
            return pairs
    raise WorkloadError(
        f"could not sample a load-bounded {k}-permutation on {nodes} nodes"
    )  # pragma: no cover - acceptance is high for the sizes we use


def worst_case_virtual_buses(nodes: int, k: int) -> list[tuple[int, int]]:
    """The concluding-remark scenario (E15 upper end): ``k`` full-length
    virtual buses — each spans ``N - 1`` segments.

    Returns ``k`` pairs ``(i, i - 1 mod N)``; their ring load is exactly
    ``k`` on every segment except the ``k`` gaps.
    """
    if not 1 <= k <= nodes:
        raise WorkloadError(f"k must be in 1..{nodes}, got {k}")
    return [(i, (i - 1) % nodes) for i in range(k)]


def many_short_messages(nodes: int) -> list[tuple[int, int]]:
    """The other end of E15: ``N`` single-segment messages — an RMB with
    one lane carries all ``N`` concurrently (far more than 1 bus's worth).
    """
    return [(i, (i + 1) % nodes) for i in range(nodes)]

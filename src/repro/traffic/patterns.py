"""One vocabulary over every workload shape the suite drives.

A :class:`TrafficPattern` names *who sends to whom*: a permutation family
from :data:`repro.traffic.permutations.FAMILIES`, a k-permutation (the
paper's Section 3 capability metric), or a stochastic destination model
(uniform / hotspot / locality).  The orthogonal axis — *when* messages
are injected — is an arrival process from :mod:`repro.traffic.arrivals`
(Bernoulli, Poisson, bursty MMPP, diurnal).  :func:`pattern_schedule`
composes the two into a replayable
:class:`~repro.traffic.arrivals.ArrivalSchedule`, and
:func:`pattern_batch` realises a pattern as a zero-time message batch for
the cross-topology arena.

Patterns are parsed from compact specs (``"transpose"``,
``"hotspot:0.3"``, ``"kperm:4"``, ``"ring-shift:5"``) so the CLI, the
saturation engine and the benchmarks all speak the same strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.flits import Message
from repro.errors import WorkloadError
from repro.sim.rng import RandomStream
from repro.traffic.arrivals import (
    ArrivalSchedule,
    DestinationFn,
    bernoulli_schedule,
    diurnal_schedule,
    hotspot_destinations,
    local_destinations,
    mmpp_schedule,
    poisson_schedule,
    uniform_destinations,
)
from repro.traffic.kpermutation import random_kpermutation
from repro.traffic.permutations import FAMILIES, generate

#: Pattern kinds.
PERMUTATION = "permutation"
KPERMUTATION = "kpermutation"
STOCHASTIC = "stochastic"

#: Stochastic destination models addressable by spec.
STOCHASTIC_MODELS = ("uniform", "hotspot", "local")

#: Arrival processes addressable by name (see :func:`pattern_schedule`).
ARRIVALS = ("bernoulli", "poisson", "mmpp", "diurnal")


@dataclass(frozen=True)
class TrafficPattern:
    """A named destination structure over ``nodes`` ring positions.

    Attributes:
        spec: the canonical spec string the pattern was parsed from.
        nodes: network size the pattern is bound to.
        kind: ``"permutation"``, ``"kpermutation"`` or ``"stochastic"``.
        sources: the injecting nodes (fixed points of a permutation and
            non-participants of a k-permutation never inject).
        fixed: for deterministic patterns, ``fixed[i]`` is node ``i``'s
            destination (``i`` itself marks a silent node); ``None`` for
            stochastic patterns.
        chooser: for stochastic patterns, the per-draw destination
            function; ``None`` for deterministic ones.
    """

    spec: str
    nodes: int
    kind: str
    sources: tuple[int, ...]
    fixed: Optional[tuple[int, ...]] = None
    chooser: Optional[DestinationFn] = field(default=None, compare=False)

    def destination_fn(self) -> DestinationFn:
        """The pattern as a destination chooser for arrival schedules."""
        if self.fixed is not None:
            fixed = self.fixed

            def choose(source: int, rng: RandomStream) -> int:
                destination = fixed[source]
                if destination == source:
                    raise WorkloadError(
                        f"node {source} is silent under pattern "
                        f"{self.spec!r}; inject from sources only"
                    )
                return destination

            return choose
        assert self.chooser is not None
        return self.chooser

    def pairs(self) -> list[tuple[int, int]]:
        """The deterministic (source, destination) pairs.

        Raises:
            WorkloadError: for stochastic patterns, which have no fixed
                pair set — realise them with :func:`pattern_batch`.
        """
        if self.fixed is None:
            raise WorkloadError(
                f"pattern {self.spec!r} is stochastic; it has no fixed "
                f"pair set (use pattern_batch to sample one)"
            )
        return [(source, self.fixed[source]) for source in self.sources]

    def describe(self) -> str:
        return (f"{self.spec} ({self.kind}, {len(self.sources)}/"
                f"{self.nodes} nodes injecting)")


def _parse_param(spec: str) -> tuple[str, Optional[str]]:
    """Split ``"name:param"`` into head and optional parameter."""
    head, _, param = spec.partition(":")
    return head, (param if param else None)


def make_pattern(spec: str, nodes: int, k: int = 4,
                 seed: int = 0) -> TrafficPattern:
    """Parse a pattern spec bound to a network size.

    Accepted specs:

    * any :data:`FAMILIES` name (``"transpose"``, ``"tornado"``, ...);
      ``"ring-shift:D"`` selects the shift distance;
    * ``"kperm"`` / ``"kperm:K"`` — a seeded random k-permutation
      (defaults to the lane count ``k``);
    * ``"uniform"`` — uniform random destinations;
    * ``"hotspot"`` / ``"hotspot:FRACTION"`` — hotspot node 0 attracting
      the given traffic fraction (default 0.2);
    * ``"local"`` / ``"local:REACH"`` — clockwise locality (default
      reach ``max(1, nodes // 8)``).

    Random draws derive from ``(seed, spec)`` named streams, so the same
    spec + seed always names the identical pattern.
    """
    if nodes < 2:
        raise WorkloadError(
            f"traffic patterns need at least 2 nodes, got {nodes}"
        )
    head, param = _parse_param(spec)
    rng = RandomStream(seed, name=f"pattern/{spec}")
    if head in FAMILIES:
        if head == "ring-shift" and param is not None:
            perm = FAMILIES[head](nodes, int(param))  # type: ignore[call-arg]
        else:
            if param is not None:
                raise WorkloadError(
                    f"pattern {head!r} takes no parameter, got {spec!r}"
                )
            perm = generate(head, nodes, rng)
        sources = tuple(node for node, dest in enumerate(perm)
                        if dest != node)
        return TrafficPattern(spec=spec, nodes=nodes, kind=PERMUTATION,
                              sources=sources, fixed=tuple(perm))
    if head == "kperm":
        size = int(param) if param is not None else max(1, min(k, nodes - 1))
        pairs = random_kpermutation(nodes, size, rng)
        fixed = list(range(nodes))
        for source, destination in pairs:
            fixed[source] = destination
        return TrafficPattern(
            spec=spec, nodes=nodes, kind=KPERMUTATION,
            sources=tuple(sorted(source for source, _ in pairs)),
            fixed=tuple(fixed),
        )
    if head == "uniform":
        return TrafficPattern(
            spec=spec, nodes=nodes, kind=STOCHASTIC,
            sources=tuple(range(nodes)),
            chooser=uniform_destinations(nodes),
        )
    if head == "hotspot":
        fraction = float(param) if param is not None else 0.2
        return TrafficPattern(
            spec=spec, nodes=nodes, kind=STOCHASTIC,
            sources=tuple(range(nodes)),
            chooser=hotspot_destinations(nodes, hotspot=0,
                                         fraction=fraction),
        )
    if head == "local":
        reach = int(param) if param is not None else max(1, nodes // 8)
        return TrafficPattern(
            spec=spec, nodes=nodes, kind=STOCHASTIC,
            sources=tuple(range(nodes)),
            chooser=local_destinations(nodes, reach=reach),
        )
    raise WorkloadError(
        f"unknown traffic pattern {spec!r}; choose a permutation family "
        f"({', '.join(sorted(FAMILIES))}), 'kperm[:K]', or a stochastic "
        f"model ({', '.join(STOCHASTIC_MODELS)})"
    )


def pattern_names(include_random: bool = True) -> list[str]:
    """Every parameterless spec :func:`make_pattern` accepts (CLI help)."""
    names = sorted(FAMILIES) + ["kperm"] + list(STOCHASTIC_MODELS)
    if not include_random:
        names = [name for name in names
                 if name not in ("random", "derangement")]
    return names


def pattern_schedule(
    pattern: TrafficPattern,
    duration: float,
    rate: float,
    data_flits: int,
    seed: int,
    arrival: str = "bernoulli",
    start_id: int = 0,
    mmpp_mean_on: float = 50.0,
    mmpp_mean_off: float = 150.0,
    diurnal_period: float = 500.0,
) -> ArrivalSchedule:
    """Compose a pattern with an arrival process into a schedule.

    ``rate`` is the per-injecting-node offered load in messages per tick
    (the Bernoulli probability / Poisson rate; for MMPP it is the ON-phase
    rate and for diurnal the peak rate, so the delivered mean is lower).
    The schedule is deterministic in ``(seed, pattern.spec, arrival,
    rate)`` via a named stream fork.
    """
    rng = RandomStream(
        seed, name=f"traffic/{pattern.spec}/{arrival}/{rate:.8g}")
    destinations = pattern.destination_fn()
    sources = pattern.sources
    if arrival == "bernoulli":
        return bernoulli_schedule(
            pattern.nodes, int(duration), rate, data_flits, rng,
            destinations=destinations, sources=sources, start_id=start_id)
    if arrival == "poisson":
        return poisson_schedule(
            pattern.nodes, duration, rate, data_flits, rng,
            destinations=destinations, sources=sources, start_id=start_id)
    if arrival == "mmpp":
        return mmpp_schedule(
            pattern.nodes, duration, rate, data_flits, rng,
            destinations=destinations, sources=sources, start_id=start_id,
            mean_on=mmpp_mean_on, mean_off=mmpp_mean_off)
    if arrival == "diurnal":
        return diurnal_schedule(
            pattern.nodes, duration, rate, data_flits, rng,
            destinations=destinations, sources=sources, start_id=start_id,
            period=diurnal_period)
    raise WorkloadError(
        f"unknown arrival process {arrival!r}; "
        f"choose from {', '.join(ARRIVALS)}"
    )


def pattern_batch(
    pattern: TrafficPattern,
    data_flits: int,
    seed: int = 0,
    rounds: int = 1,
    start_id: int = 0,
) -> ArrivalSchedule:
    """Realise a pattern as ``rounds`` back-to-back zero-time batches.

    The arena's unit of comparison: every entry arrives at t=0, so each
    topology races the identical message set from a standing start (the
    Section 3 discipline).  Permutation families repeat their pair set
    each round (``rounds`` copies of ``ring-shift`` is the sustained
    neighbour k-permutation workload); k-permutations redraw a *fresh*
    set after the first round, so rounds sample independent
    k-permutations instead of stacking one draw's worst segment;
    stochastic patterns draw one destination per source per round.  All
    draws come from a ``(seed, spec)`` named stream.
    """
    if rounds < 1:
        raise WorkloadError(f"rounds must be >= 1, got {rounds}")
    rng = RandomStream(seed, name=f"batch/{pattern.spec}")
    entries: list[tuple[float, Message]] = []
    next_id = start_id
    for round_index in range(rounds):
        if pattern.kind == KPERMUTATION and round_index > 0:
            draws = random_kpermutation(
                pattern.nodes, len(pattern.sources),
                rng.fork(f"round{round_index}"))
        elif pattern.fixed is not None:
            draws = [(source, pattern.fixed[source])
                     for source in pattern.sources]
        else:
            chooser = pattern.destination_fn()
            draws = [(source, chooser(source, rng))
                     for source in pattern.sources]
        for source, destination in draws:
            entries.append((
                0.0,
                Message(message_id=next_id, source=source,
                        destination=destination, data_flits=data_flits),
            ))
            next_id += 1
    return ArrivalSchedule(entries)


#: Re-exported convenience alias used by benchmarks.
PatternFactory = Callable[[str, int, int, int], TrafficPattern]


def batch_pairs(messages: Sequence[Message]) -> list[tuple[int, int]]:
    """(source, destination) view of a message batch (for load metrics)."""
    return [(message.source, message.destination) for message in messages]

"""Saturation sweeps: where does a pattern's latency diverge?

For a given :class:`~repro.traffic.patterns.TrafficPattern` and arrival
process, the engine binary-searches the per-node injection rate at which
the network stops keeping up, and emits the full offered-load vs
throughput / latency curve along the way — the evaluation the paper's
own Section 3 race implies and the MIN / hierarchical-ring literature
makes explicit.

A load point is *stable* when the run drains inside its tick budget,
delivers at least ``min_completion`` of the offered messages, and keeps
mean latency under ``latency_cap``.  Saturation is the highest stable
rate bracketed by the search.  Every point is a fresh, fully seeded
simulation, so curves are deterministic and bit-comparable across the
event and batch backends (the differential suite in ``tests/batch``
guarantees the two backends agree point by point).

The engine composes with the resilience stack: fault plans, admission
control, recovery and the watchdog all thread through to the event
backend; asking the batch backend for a feature it does not model raises
:class:`~repro.batch.engine.BatchUnsupported` naming the feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.config import RMBConfig, RetryPolicy
from repro.core.network import RMBRing
from repro.core.stats import RunStats
from repro.errors import ProtocolError
from repro.hier.fabric import RingFabric
from repro.hier.hier import HierRMB
from repro.traffic.patterns import TrafficPattern, pattern_schedule
from repro.traffic.workload import replay_on_fabric, replay_on_ring

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.faults.plan import FaultPlan
    from repro.obs import Observability
    from repro.resilience import RecoveryConfig
    from repro.supervision import WatchdogConfig

#: Saturated runs retry-storm; a bounded policy keeps every point's
#: drain finite so instability shows up as lost completion, not a hang.
BOUNDED_RETRY = RetryPolicy(delay=8.0, backoff=1.4, jitter=0.5,
                            max_retries=8)


@dataclass
class SaturationConfig:
    """Geometry, workload shape and stability criteria for one sweep."""

    nodes: int = 16
    lanes: int = 4
    data_flits: int = 4
    seed: int = 0
    duration: float = 200.0
    backend: str = "event"
    arrival: str = "bernoulli"
    #: ``"ring"`` (the flat RMB), or a hier spec (``"hier"`` /
    #: ``"hier:MxN"``): stability is then judged over the whole fabric
    #: (journey-level completion and end-to-end latency) and load points
    #: carry per-ring delivery rates.  Event backend only.
    topology: str = "ring"
    cycle_period: float = 2.0
    probe_period: Optional[float] = 8.0
    retry: RetryPolicy = field(default_factory=lambda: BOUNDED_RETRY)
    # --- stability criteria ------------------------------------------
    min_completion: float = 0.99
    latency_cap: Optional[float] = None     # None: 20 * (flits + nodes)
    drain_cap_factor: float = 10.0
    # --- search bracket ----------------------------------------------
    rate_floor: float = 0.002
    rate_ceiling: float = 0.5
    iterations: int = 6
    # --- resilience composition (event backend only) -----------------
    fault_plan: Optional["FaultPlan"] = None
    admission_limit: Optional[int] = None
    admission_policy: str = "defer"
    recovery: Optional["RecoveryConfig"] = None
    watchdog: Optional["WatchdogConfig"] = None
    obs: Optional["Observability"] = None

    def resolved_latency_cap(self) -> float:
        if self.latency_cap is not None:
            return self.latency_cap
        return 20.0 * (self.data_flits + self.nodes)


@dataclass
class LoadPoint:
    """One measured point on an offered-load curve."""

    rate: float                  # offered messages / injecting node / tick
    offered: int                 # messages injected
    delivered: int
    completion_rate: float
    mean_latency: float
    p95_latency: float
    throughput: float            # delivered messages per simulated tick
    duration: float              # simulated ticks including drain
    stable: bool
    reason: str                  # "ok" or which criterion failed
    #: Per-ring delivered-legs-per-tick, for fabric topologies only
    #: (``None`` on the flat ring, keeping committed row shapes stable).
    ring_rates: Optional[dict[str, float]] = None

    def row(self) -> dict[str, Any]:
        """Flat dictionary for table rendering."""
        row = {
            "rate": round(self.rate, 5),
            "offered": self.offered,
            "delivered": self.delivered,
            "completion": round(self.completion_rate, 4),
            "mean_latency": round(self.mean_latency, 2),
            "p95_latency": round(self.p95_latency, 2),
            "throughput": round(self.throughput, 4),
            "stable": "yes" if self.stable else f"no ({self.reason})",
        }
        if self.ring_rates is not None:
            row["ring_rates"] = {name: round(rate, 5)
                                 for name, rate in self.ring_rates.items()}
        return row


@dataclass
class SaturationCurve:
    """The sweep's result: every evaluated point plus the bracket."""

    pattern: str
    backend: str
    arrival: str
    nodes: int
    lanes: int
    points: list[LoadPoint]
    saturation_rate: float       # highest rate measured stable
    unstable_rate: Optional[float]  # lowest rate measured unstable
    topology: str = "ring"

    def rows(self) -> list[dict[str, Any]]:
        return [point.row() for point in
                sorted(self.points, key=lambda p: p.rate)]

    def saturation_point(self) -> Optional[LoadPoint]:
        stable = [p for p in self.points if p.stable]
        if not stable:
            return None
        return max(stable, key=lambda p: p.rate)

    def summary(self) -> dict[str, Any]:
        """JSON-able record (the arena-smoke CI artifact shape).

        ``topology`` appears only for fabric sweeps, so flat-ring
        summaries keep the committed baseline shape byte for byte.
        """
        peak = self.saturation_point()
        extra = ({"topology": self.topology}
                 if self.topology != "ring" else {})
        return {
            **extra,
            "pattern": self.pattern,
            "backend": self.backend,
            "arrival": self.arrival,
            "nodes": self.nodes,
            "lanes": self.lanes,
            "saturation_rate": round(self.saturation_rate, 6),
            "unstable_rate": (round(self.unstable_rate, 6)
                              if self.unstable_rate is not None else None),
            "peak_throughput": (round(peak.throughput, 6)
                                if peak is not None else 0.0),
            "peak_mean_latency": (round(peak.mean_latency, 4)
                                  if peak is not None else 0.0),
            "points": self.rows(),
        }


def _build_event_ring(cfg: SaturationConfig) -> RMBRing:
    config = RMBConfig(
        nodes=cfg.nodes, lanes=cfg.lanes, cycle_period=cfg.cycle_period,
        retry=cfg.retry, admission_limit=cfg.admission_limit,
        admission_policy=cfg.admission_policy,
        check_level="sampled",
    )
    return RMBRing(config, seed=cfg.seed, probe_period=cfg.probe_period,
                   fault_plan=cfg.fault_plan, watchdog=cfg.watchdog,
                   recovery=cfg.recovery, obs=cfg.obs,
                   trace_kinds=set())


def _build_event_hier(cfg: SaturationConfig) -> HierRMB:
    from repro.networks.registry import hier_shape

    unsupported = [
        ("fault_plan", cfg.fault_plan is not None),
        ("recovery", cfg.recovery is not None),
        ("watchdog", cfg.watchdog is not None),
    ]
    flagged = [name for name, used in unsupported if used]
    if flagged:
        raise ProtocolError(
            f"saturation on a hier topology does not yet compose with "
            f"{', '.join(flagged)}; use topology='ring'"
        )
    locals_count, nodes_per_local = hier_shape(cfg.topology, cfg.nodes)
    template = RMBConfig(
        nodes=nodes_per_local, lanes=max(2, cfg.lanes),
        cycle_period=cfg.cycle_period, retry=cfg.retry,
        admission_limit=cfg.admission_limit,
        admission_policy=cfg.admission_policy,
        check_level="sampled",
    )
    return HierRMB(
        locals=locals_count, nodes_per_local=nodes_per_local,
        lanes=max(2, cfg.lanes), seed=cfg.seed, config=template,
        probe_period=cfg.probe_period, obs=cfg.obs,
    )


def _build_batch_ring(cfg: SaturationConfig) -> Any:
    from repro.batch import BatchRing
    from repro.batch.engine import BatchUnsupported

    needs_event = [
        ("fault_plan", cfg.fault_plan is not None),
        ("recovery", cfg.recovery is not None),
        ("watchdog", cfg.watchdog is not None),
        ("admission_limit", cfg.admission_limit is not None),
        ("obs", cfg.obs is not None),
        (f"topology {cfg.topology!r}", cfg.topology != "ring"),
    ]
    flagged = [name for name, used in needs_event if used]
    if flagged:
        raise BatchUnsupported(
            f"saturation on the batch backend does not support "
            f"{', '.join(flagged)}; use backend='event'"
        )
    config = RMBConfig(nodes=cfg.nodes, lanes=cfg.lanes,
                       cycle_period=cfg.cycle_period, retry=cfg.retry)
    return BatchRing(config, seed=cfg.seed, probe_period=cfg.probe_period)


def run_point(cfg: SaturationConfig, pattern: TrafficPattern,
              rate: float) -> LoadPoint:
    """Simulate one offered-load point and classify its stability."""
    schedule = pattern_schedule(
        pattern, duration=cfg.duration, rate=rate,
        data_flits=cfg.data_flits, seed=cfg.seed, arrival=cfg.arrival)
    if len(schedule) == 0:
        return LoadPoint(rate=rate, offered=0, delivered=0,
                         completion_rate=1.0, mean_latency=0.0,
                         p95_latency=0.0, throughput=0.0, duration=0.0,
                         stable=True, reason="ok")
    if cfg.backend == "batch":
        ring = _build_batch_ring(cfg)
        from repro.batch import replay_on_batch
        replay_on_batch(ring, schedule)
    elif cfg.backend == "event":
        if cfg.topology == "ring":
            ring = _build_event_ring(cfg)
            replay_on_ring(ring, schedule)
        elif cfg.topology == "hier" or cfg.topology.startswith("hier:"):
            ring = _build_event_hier(cfg)
            replay_on_fabric(ring, schedule)
        else:
            raise ProtocolError(
                f"unknown topology {cfg.topology!r}; choose 'ring', "
                f"'hier' or 'hier:MxN'"
            )
    else:
        raise ProtocolError(
            f"unknown backend {cfg.backend!r}; choose 'event' or 'batch'"
        )
    drain_cap = max(4000.0, cfg.drain_cap_factor * cfg.duration)
    drained = True
    ring.run(schedule.horizon() + 1.0)
    try:
        ring.drain(max_ticks=drain_cap)
    except ProtocolError:
        drained = False
    ring_rates: Optional[dict[str, float]] = None
    if isinstance(ring, RingFabric):
        # Stability is judged over the whole fabric: journey-level
        # completion and end-to-end latency, not per-leg numbers.
        stats: RunStats = ring.journey_run_stats()
        duration = stats.duration if stats.duration > 0 else 1.0
        ring_rates = {
            name: member.routing.completed / duration
            for name, member in ring.rings.items()
        }
    else:
        stats = ring.stats()
    point = _classify(cfg, rate, stats, drained, ring_rates=ring_rates)
    _record_obs(cfg, pattern, point)
    return point


def _classify(cfg: SaturationConfig, rate: float, stats: RunStats,
              drained: bool,
              ring_rates: Optional[dict[str, float]] = None) -> LoadPoint:
    duration = stats.duration if stats.duration > 0 else 1.0
    completion = stats.completion_rate
    mean_latency = stats.latency.mean
    cap = cfg.resolved_latency_cap()
    if not drained:
        stable, reason = False, "drain"
    elif completion < cfg.min_completion:
        stable, reason = False, "completion"
    elif mean_latency > cap:
        stable, reason = False, "latency"
    else:
        stable, reason = True, "ok"
    return LoadPoint(
        rate=rate,
        offered=int(stats.offered),
        delivered=int(stats.completed),
        completion_rate=completion,
        mean_latency=mean_latency,
        p95_latency=stats.latency_percentile(0.95),
        throughput=stats.completed / duration,
        duration=duration,
        stable=stable,
        reason=reason,
        ring_rates=ring_rates,
    )


def _record_obs(cfg: SaturationConfig, pattern: TrafficPattern,
                point: LoadPoint) -> None:
    """Count sweep activity in the run's metrics registry (passive)."""
    if cfg.obs is None or not cfg.obs.registry.enabled:
        return
    registry = cfg.obs.registry
    registry.counter("rmb_traffic_points_total",
                     help="saturation load points evaluated",
                     pattern=pattern.spec).inc()
    if not point.stable:
        registry.counter("rmb_traffic_unstable_points_total",
                         help="load points classified unstable",
                         pattern=pattern.spec).inc()


def saturation_search(cfg: SaturationConfig,
                      pattern: TrafficPattern) -> SaturationCurve:
    """Bracket the stability boundary by bisection.

    Evaluates the floor and ceiling rates, then bisects ``iterations``
    times between the highest known-stable and lowest known-unstable
    rates.  Every evaluated point lands on the returned curve, so the
    caller gets the offered-load sweep for free.
    """
    points: dict[float, LoadPoint] = {}

    def evaluate(rate: float) -> LoadPoint:
        if rate not in points:
            points[rate] = run_point(cfg, pattern, rate)
        return points[rate]

    floor = evaluate(cfg.rate_floor)
    curve = SaturationCurve(
        pattern=pattern.spec, backend=cfg.backend, arrival=cfg.arrival,
        nodes=cfg.nodes, lanes=cfg.lanes, points=[],
        saturation_rate=0.0, unstable_rate=None, topology=cfg.topology)
    if not floor.stable:
        curve.points = list(points.values())
        curve.unstable_rate = cfg.rate_floor
        return curve
    low = cfg.rate_floor
    high: Optional[float] = None
    ceiling = evaluate(cfg.rate_ceiling)
    if ceiling.stable:
        low = cfg.rate_ceiling
    else:
        high = cfg.rate_ceiling
        for _ in range(cfg.iterations):
            mid = (low + high) / 2.0
            if evaluate(mid).stable:
                low = mid
            else:
                high = mid
    curve.points = list(points.values())
    curve.saturation_rate = low
    curve.unstable_rate = high
    if cfg.obs is not None and cfg.obs.registry.enabled:
        cfg.obs.registry.gauge(
            "rmb_traffic_saturation_rate",
            help="highest stable per-node injection rate",
            pattern=pattern.spec, backend=cfg.backend,
        ).set(curve.saturation_rate)
    return curve


def sweep_rates(cfg: SaturationConfig, pattern: TrafficPattern,
                rates: list[float]) -> SaturationCurve:
    """Evaluate an explicit rate list (no search) as a curve."""
    points = [run_point(cfg, pattern, rate) for rate in rates]
    stable = [p.rate for p in points if p.stable]
    unstable = [p.rate for p in points if not p.stable]
    return SaturationCurve(
        pattern=pattern.spec, backend=cfg.backend, arrival=cfg.arrival,
        nodes=cfg.nodes, lanes=cfg.lanes, points=points,
        saturation_rate=max(stable) if stable else 0.0,
        unstable_rate=min(unstable) if unstable else None,
        topology=cfg.topology)

"""Workload drivers: replay arrival schedules onto networks.

Batch networks (:class:`~repro.networks.base.ComparisonNetwork`) consume a
message list directly; the RMB ring is a live simulation, so schedules are
replayed by scheduling ``submit`` calls at each arrival instant.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, Union

from repro.core.flits import Message
from repro.core.network import RMBRing, TwoRingRMB
from repro.core.stats import RunStats
from repro.hier.fabric import RingFabric
from repro.traffic.arrivals import ArrivalSchedule
from repro.traffic.permutations import is_permutation
from repro.errors import WorkloadError


class _SubmitTarget(Protocol):
    """Anything a schedule can be replayed onto (ring or two-ring)."""

    def submit(self, message: Message) -> object: ...


def replay_on_ring(ring: RMBRing, schedule: ArrivalSchedule) -> None:
    """Arrange for every schedule entry to be submitted at its time.

    Call before running the simulation.  Entries at times earlier than the
    ring's current clock are rejected.
    """
    now = ring.sim.now
    for time, message in schedule:
        if time < now:
            raise WorkloadError(
                f"schedule entry at t={time} is in the ring's past ({now})"
            )
        ring.sim.schedule_at(time, _submitter(ring, message),
                             label=f"arrive.msg{message.message_id}")


def replay_on_fabric(network: RingFabric, schedule: ArrivalSchedule) -> None:
    """Schedule-replay onto any ring fabric (two-ring, hierarchy, ...)."""
    now = network.sim.now
    for time, message in schedule:
        if time < now:
            raise WorkloadError(
                f"schedule entry at t={time} is in the network's past ({now})"
            )
        network.sim.schedule_at(time, _submitter(network, message),
                                label=f"arrive.msg{message.message_id}")


def replay_on_two_ring(network: TwoRingRMB, schedule: ArrivalSchedule) -> None:
    """Schedule-replay onto a bidirectional RMB."""
    replay_on_fabric(network, schedule)


class _Submitter:
    """Picklable deferred ``target.submit(message)`` call.

    Workload arrivals sit in the kernel queue for the whole run; a class
    instance (rather than a closure) keeps the queue serialisable for
    checkpoint/restore.
    """

    def __init__(self, target: _SubmitTarget, message: Message) -> None:
        self._target = target
        self._message = message

    def __call__(self) -> None:
        self._target.submit(self._message)


def _submitter(target: _SubmitTarget, message: Message) -> _Submitter:
    return _Submitter(target, message)


def run_load_point(
    config_builder: Callable[[], Union[RMBRing, RingFabric]],
    schedule: ArrivalSchedule,
    settle_ticks: float = 0.0,
    max_ticks: float = 2_000_000.0,
) -> RunStats:
    """Build a fresh ring, replay a schedule, drain, return stats.

    Args:
        config_builder: zero-argument callable returning a new
            :class:`RMBRing` (or any :class:`RingFabric`, e.g.
            :class:`TwoRingRMB`).
        schedule: the pre-generated workload.
        settle_ticks: extra simulated time after the last arrival before
            draining begins (lets queued work phase in naturally).
    """
    network = config_builder()
    if isinstance(network, RingFabric):
        replay_on_fabric(network, schedule)
    else:
        replay_on_ring(network, schedule)
    horizon = schedule.horizon() + settle_ticks
    network.run(horizon)
    network.drain(max_ticks=max_ticks)
    return network.stats()


def permutation_messages(perm: Sequence[int], data_flits: int,
                         start_id: int = 0) -> list[Message]:
    """Messages realising a permutation (fixed points skipped).

    Raises:
        WorkloadError: if ``perm`` is not a permutation of its indices.
    """
    if not is_permutation(list(perm)):
        raise WorkloadError("input is not a permutation")
    messages = []
    next_id = start_id
    for source, destination in enumerate(perm):
        if source == destination:
            continue
        messages.append(Message(message_id=next_id, source=source,
                                destination=destination,
                                data_flits=data_flits))
        next_id += 1
    return messages

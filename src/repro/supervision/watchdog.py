"""No-progress watchdog for supervised RMB runs.

The paper's protocol is live under its stated assumptions (Theorem 1),
but a long simulation can still wedge when those assumptions are broken —
by fault plans that eat a whole column, by adversarial workloads that pin
every lane, or simply by bugs in an experimental change.  The
:class:`Watchdog` is the supervision layer's detector: a periodic probe
(one :class:`~repro.sim.kernel.Periodic` on the run's own simulator, so
checkpoints capture it like any other machinery) that watches for three
no-progress conditions and applies a configurable recovery action to
each:

``stalled_bus``
    A live virtual bus whose observable state — phase, hop count, reverse
    signal position, data flits sent — has not changed for
    ``stall_window`` ticks.  Recovery ``force_teardown`` Nacks the oldest
    stalled bus back to its source (the message retries; resources free);
    ``report`` records the incident and touches nothing.

``retry_storm``
    A message that has accumulated ``retry_threshold`` retries since the
    watchdog last intervened.  Recovery ``reset_backoff`` forgives the
    exponential backoff so the message's next attempt comes quickly
    (useful after a repair removes the cause); ``report`` only records.

``handshake_stall``
    The asynchronous odd/even handshake (paper Section 2.5) has made no
    cycle transition anywhere on the ring for ``handshake_window`` ticks.
    A healthy ring transitions continuously even when idle, so this
    always indicates a broken controller mesh; the only action is
    ``report``.

Every detection is recorded as an :class:`~repro.supervision.incidents.
Incident` regardless of the action taken, so run reports show what
happened and what was done about it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ConfigurationError
from repro.protocol.lifecycle import lifecycle_name
from repro.sim.kernel import Periodic, Simulator
from repro.supervision.incidents import Incident, IncidentLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.cycles import CycleController
    from repro.core.routing import RoutingEngine
    from repro.obs.wiring import Observability

#: Recovery actions.
FORCE_TEARDOWN = "force_teardown"
RESET_BACKOFF = "reset_backoff"
REPORT = "report"


@dataclass(frozen=True)
class WatchdogConfig:
    """Tuning knobs for one :class:`Watchdog`.

    Attributes:
        period: ticks between probes.
        stall_window: ticks a bus may show zero observable progress before
            the ``stalled_bus`` condition trips.  Must comfortably exceed
            the longest legitimate stall (a header waiting out a busy
            column); several ``cycle_period`` is a sane floor.
        stalled_bus_action: ``"force_teardown"`` or ``"report"``.
        retry_threshold: retries since the last intervention before the
            ``retry_storm`` condition trips.
        retry_storm_action: ``"reset_backoff"`` or ``"report"``.
        handshake_window: ticks without any cycle transition before the
            ``handshake_stall`` condition trips (asynchronous mode only).
    """

    period: float = 50.0
    stall_window: float = 400.0
    stalled_bus_action: str = FORCE_TEARDOWN
    retry_threshold: int = 8
    retry_storm_action: str = REPORT
    handshake_window: float = 800.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(
                f"watchdog period must be positive, got {self.period!r}")
        if self.stall_window < self.period:
            raise ConfigurationError(
                "stall_window shorter than the probe period can never "
                f"observe two probes ({self.stall_window} < {self.period})")
        if self.stalled_bus_action not in (FORCE_TEARDOWN, REPORT):
            raise ConfigurationError(
                f"unknown stalled_bus_action {self.stalled_bus_action!r}")
        if self.retry_threshold < 1:
            raise ConfigurationError(
                f"retry_threshold must be >= 1, got {self.retry_threshold}")
        if self.retry_storm_action not in (RESET_BACKOFF, REPORT):
            raise ConfigurationError(
                f"unknown retry_storm_action {self.retry_storm_action!r}")
        if self.handshake_window < self.period:
            raise ConfigurationError(
                "handshake_window shorter than the probe period can never "
                f"observe two probes ({self.handshake_window} < {self.period})")


class Watchdog:
    """Periodic progress probe with per-condition recovery actions.

    All state lives in plain attributes and the probe is a bound method,
    so a watchdog inside a checkpointed ring restores with its timers and
    dedup history intact.

    Args:
        sim: the run's simulator (the probe rides its event queue).
        routing: the routing engine under supervision.
        config: detection windows and recovery actions.
        controllers: the per-INC cycle controllers (asynchronous mode);
            ``None`` disables the handshake check.
        name: label prefix for the probe event.
    """

    def __init__(
        self,
        sim: Simulator,
        routing: "RoutingEngine",
        config: Optional[WatchdogConfig] = None,
        controllers: Optional[Sequence["CycleController"]] = None,
        name: str = "watchdog",
        obs: Optional["Observability"] = None,
    ) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self.incidents = IncidentLog()
        # Incidents as first-class metrics: every detection increments a
        # (condition, action)-labelled counter when observability is armed.
        self.obs = obs
        self._obs_on = obs is not None and obs.enabled
        self._sim = sim
        self._routing = routing
        self._controllers = list(controllers) if controllers else None
        # bus_id -> (progress signature, time it was last seen changing)
        self._bus_progress: dict[int, tuple[tuple, float]] = {}
        # message_id -> retries count at the last intervention/report
        self._retry_seen: dict[int, int] = {}
        self._handshake_mark: tuple[int, float] = (-1, sim.now)
        self._periodic: Periodic = Periodic(
            sim, self.config.period, self._probe, label=f"{name}.probe"
        )

    def stop(self) -> None:
        """Disarm the watchdog (pending probe is cancelled)."""
        self._periodic.stop()

    # ------------------------------------------------------------------
    def _probe(self) -> None:
        now = self._sim.now
        self._check_buses(now)
        self._check_retries(now)
        self._check_handshake(now)

    def _check_buses(self, now: float) -> None:
        config = self.config
        live: set[int] = set()
        stalled: list[tuple[float, int]] = []   # (age, bus_id), oldest first
        for bus in list(self._routing.buses.values()):
            live.add(bus.bus_id)
            signature = (bus.phase.value, len(bus.hops),
                         bus.signal_position, bus.data_sent)
            previous = self._bus_progress.get(bus.bus_id)
            if previous is None or previous[0] != signature:
                self._bus_progress[bus.bus_id] = (signature, now)
                continue
            age = now - previous[1]
            if age >= config.stall_window:
                stalled.append((age, bus.bus_id))
        for bus_id in list(self._bus_progress):
            if bus_id not in live:
                del self._bus_progress[bus_id]
        if not stalled:
            return
        if config.stalled_bus_action == FORCE_TEARDOWN:
            # One recovery per probe: tear down the *oldest* stalled bus
            # (ties break on bus id for determinism).  Freeing its
            # segments usually unwedges the rest; survivors are picked up
            # by the next probe if not.
            age, bus_id = max(stalled, key=lambda item: (item[0], -item[1]))
            bus = self._routing.buses[bus_id]
            # Incident details speak the lifecycle-FSM vocabulary
            # (repro.protocol.lifecycle), same as drain errors and
            # livelock diagnostics.
            detail = (f"no progress for {age:g} ticks in state "
                      f"{lifecycle_name(bus.phase)}")
            if self._routing.force_teardown(bus_id):
                self._report(now, "stalled_bus", f"bus#{bus_id}",
                             FORCE_TEARDOWN, detail)
            self._bus_progress.pop(bus_id, None)
        else:
            for age, bus_id in stalled:
                bus = self._routing.buses[bus_id]
                self._report(now, "stalled_bus", f"bus#{bus_id}", REPORT,
                             f"no progress for {age:g} ticks in state "
                             f"{lifecycle_name(bus.phase)}")
                # restart the window so an ignored stall is re-reported
                # once per stall_window, not once per probe
                signature = self._bus_progress[bus_id][0]
                self._bus_progress[bus_id] = (signature, now)

    def _check_retries(self, now: float) -> None:
        config = self.config
        for message_id, record in self._routing.records.items():
            if record.finished or record.abandoned or record.shed:
                self._retry_seen.pop(message_id, None)
                continue
            baseline = max(record.backoff_floor,
                           self._retry_seen.get(message_id, 0))
            if record.retries - baseline < config.retry_threshold:
                continue
            detail = (f"{record.retries} retries "
                      f"({record.nacks} nacks, {record.fault_nacks} fault "
                      f"nacks, {record.fault_kills} kills)")
            self._retry_seen[message_id] = record.retries
            if config.retry_storm_action == RESET_BACKOFF:
                self._routing.reset_backoff(message_id)
                self._report(now, "retry_storm", f"msg{message_id}",
                             RESET_BACKOFF, detail)
            else:
                self._report(now, "retry_storm", f"msg{message_id}",
                             REPORT, detail)

    def _check_handshake(self, now: float) -> None:
        if self._controllers is None:
            return
        total = sum(controller.transitions
                    for controller in self._controllers)
        mark_total, mark_time = self._handshake_mark
        if total != mark_total:
            self._handshake_mark = (total, now)
            return
        age = now - mark_time
        if age >= self.config.handshake_window:
            laggard = min(self._controllers, key=lambda c: c.cycle)
            self._report(now, "handshake_stall", "cycle_control", REPORT,
                         f"no cycle transition for {age:g} ticks; "
                         f"inc{laggard.index} stuck at cycle "
                         f"{laggard.cycle} ({laggard.phase.value})")
            self._handshake_mark = (total, now)

    def _report(self, now: float, condition: str, subject: str,
                action: str, detail: str) -> None:
        self.incidents.record(
            Incident(time=now, condition=condition, subject=subject,
                     action=action, detail=detail)
        )
        if self._obs_on:
            self.obs.registry.counter(
                "rmb_watchdog_incidents_total",
                help="Watchdog detections by condition and recovery action",
                condition=condition, action=action,
            ).inc()

"""Per-INC admission control: bounded outstanding load under overload.

The RMB's retry protocol keeps the *segments* safe under any load, but
nothing in the paper bounds the work a single PE may pile onto its INC:
under sustained overload the per-node queues (and hence latency) grow
without bound, and retry storms amplify the collapse.  Real ring
interconnects ship throttling for exactly this reason (cf. the
overload-aware injection control in hierarchical-ring NoCs).

:class:`AdmissionController` is the policy half of supervision design
decision S2: it decides, per submission, whether a source whose
outstanding count (queued + in-flight + awaiting-retry, see
:meth:`repro.core.routing.RoutingEngine.outstanding`) has reached the
configured cap should have the new request **shed** (refused outright) or
**deferred** (held in a per-INC holding queue until capacity frees).  The
mechanism half — the holding queues and their release — lives in the
routing engine, which owns the queues being protected.
"""

from __future__ import annotations

from typing import Optional

#: decide() verdicts.
ADMIT = "admit"
SHED = "shed"
DEFER = "defer"


class AdmissionController:
    """Shed-or-defer admission policy for one ring.

    Args:
        limit: max outstanding requests per source INC (``None`` = no cap,
            every submission is admitted).
        policy: ``"shed"`` or ``"defer"`` — what happens to a submission
            that would exceed the cap.
    """

    def __init__(self, limit: Optional[int] = None,
                 policy: str = "defer") -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        if policy not in (SHED, DEFER):
            raise ValueError(f"admission policy must be 'shed' or 'defer', "
                             f"got {policy!r}")
        self.limit = limit
        self.policy = policy
        self.admitted = 0
        self.shed = 0
        self.deferred = 0
        self.released = 0
        self.peak_outstanding = 0

    @property
    def enabled(self) -> bool:
        return self.limit is not None

    def decide(self, outstanding: int) -> str:
        """Verdict for one submission given the source's outstanding count."""
        self.peak_outstanding = max(self.peak_outstanding, outstanding)
        if self.limit is None or outstanding < self.limit:
            self.admitted += 1
            return ADMIT
        if self.policy == SHED:
            self.shed += 1
            return SHED
        self.deferred += 1
        return DEFER

    def may_release(self, outstanding: int) -> bool:
        """May one deferred request be admitted now?"""
        return self.limit is None or outstanding < self.limit

    def note_released(self) -> None:
        """A deferred request left the holding queue for the real queue."""
        self.released += 1

    def summary(self) -> dict[str, float]:
        """Flat counters for run reports."""
        return {
            "admission_limit": float(self.limit) if self.limit else 0.0,
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "deferred": float(self.deferred),
            "released": float(self.released),
            "peak_outstanding": float(self.peak_outstanding),
        }

"""Per-INC admission control: bounded outstanding load under overload.

The RMB's retry protocol keeps the *segments* safe under any load, but
nothing in the paper bounds the work a single PE may pile onto its INC:
under sustained overload the per-node queues (and hence latency) grow
without bound, and retry storms amplify the collapse.  Real ring
interconnects ship throttling for exactly this reason (cf. the
overload-aware injection control in hierarchical-ring NoCs).

:class:`AdmissionController` is the policy half of supervision design
decision S2: it decides, per submission, whether a source whose
outstanding count (queued + in-flight + awaiting-retry, see
:meth:`repro.core.routing.RoutingEngine.outstanding`) has reached the
configured cap should have the new request **shed** (refused outright) or
**deferred** (held in a per-INC holding queue until capacity frees).  The
mechanism half — the holding queues and their release — lives in the
routing engine, which owns the queues being protected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.metrics import MetricsRegistry

#: decide() verdicts.
ADMIT = "admit"
SHED = "shed"
DEFER = "defer"


class AdmissionController:
    """Shed-or-defer admission policy for one ring.

    Args:
        limit: max outstanding requests per source INC (``None`` = no cap,
            every submission is admitted).
        policy: ``"shed"`` or ``"defer"`` — what happens to a submission
            that would exceed the cap.
    """

    def __init__(self, limit: Optional[int] = None,
                 policy: str = "defer") -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        if policy not in (SHED, DEFER):
            raise ValueError(f"admission policy must be 'shed' or 'defer', "
                             f"got {policy!r}")
        self.limit = limit
        self.policy = policy
        self.admitted = 0
        self.shed = 0
        self.deferred = 0
        self.released = 0
        self.peak_outstanding = 0
        # Populated by attach_metrics(): verdict -> Counter, plus the
        # released counter.  None keeps decide() at one extra branch for
        # unobserved runs.
        self._metric_verdicts: Optional[dict] = None
        self._metric_released = None

    @property
    def enabled(self) -> bool:
        return self.limit is not None

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Register per-verdict decision counters with ``registry``.

        Admission decisions become first-class metrics: the push side of
        supervision observability (the flat :meth:`summary` remains the
        run-report path).
        """
        self._metric_verdicts = {
            verdict: registry.counter(
                "rmb_admission_decisions_total",
                help="Admission verdicts by outcome", verdict=verdict)
            for verdict in (ADMIT, SHED, DEFER)
        }
        self._metric_released = registry.counter(
            "rmb_admission_released_total",
            help="Deferred requests released into the real queues")

    def decide(self, outstanding: int) -> str:
        """Verdict for one submission given the source's outstanding count."""
        self.peak_outstanding = max(self.peak_outstanding, outstanding)
        if self.limit is None or outstanding < self.limit:
            verdict = ADMIT
            self.admitted += 1
        elif self.policy == SHED:
            verdict = SHED
            self.shed += 1
        else:
            verdict = DEFER
            self.deferred += 1
        if self._metric_verdicts is not None:
            self._metric_verdicts[verdict].inc()
        return verdict

    def may_release(self, outstanding: int) -> bool:
        """May one deferred request be admitted now?"""
        return self.limit is None or outstanding < self.limit

    def note_released(self) -> None:
        """A deferred request left the holding queue for the real queue."""
        self.released += 1
        if self._metric_released is not None:
            self._metric_released.inc()

    def summary(self) -> dict[str, float]:
        """Flat counters for run reports."""
        return {
            "admission_limit": float(self.limit) if self.limit else 0.0,
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "deferred": float(self.deferred),
            "released": float(self.released),
            "peak_outstanding": float(self.peak_outstanding),
        }

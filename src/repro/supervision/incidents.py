"""Structured incident reports raised by the supervision layer.

An :class:`Incident` is the escalation end of every watchdog condition:
whatever the configured recovery action, the observation itself is kept as
plain data so a run's :class:`~repro.core.stats.RunStats` can report *what
went wrong and what was done about it* next to the performance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class Incident:
    """One supervised-execution observation.

    Attributes:
        time: simulation tick the condition was detected at.
        condition: what tripped — ``"stalled_bus"``, ``"retry_storm"``,
            or ``"handshake_stall"``.
        subject: the affected entity (``"bus#12"``, ``"node3"``,
            ``"cycle_control"``).
        action: what the watchdog did — ``"force_teardown"``,
            ``"reset_backoff"``, or ``"report"``.
        detail: free-form context (stall age, retry count, ...).
    """

    time: float
    condition: str
    subject: str
    action: str
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (f"[{self.time:>8.1f}] {self.condition}: {self.subject} "
                f"-> {self.action}{extra}")


@dataclass
class IncidentLog:
    """An append-only list of incidents with small query helpers."""

    entries: list[Incident] = field(default_factory=list)

    def record(self, incident: Incident) -> None:
        self.entries.append(incident)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self.entries)

    def of_condition(self, condition: str) -> list[Incident]:
        """All incidents with the given condition tag, in time order."""
        return [entry for entry in self.entries
                if entry.condition == condition]

    def first(self, condition: str) -> Optional[Incident]:
        """Earliest incident of ``condition``, or ``None``."""
        for entry in self.entries:
            if entry.condition == condition:
                return entry
        return None

    def counts(self) -> dict[str, int]:
        """``condition -> occurrences`` (sorted by condition name)."""
        tally: dict[str, int] = {}
        for entry in self.entries:
            tally[entry.condition] = tally.get(entry.condition, 0) + 1
        return dict(sorted(tally.items()))

    def render(self) -> str:
        """Human-readable multi-line dump."""
        return "\n".join(str(entry) for entry in self.entries)

"""Deterministic checkpoint/restore of a complete RMB run.

A snapshot captures the *entire* live object graph of a ring — simulator
clock and event queue, RNG stream states, segment grid (health and
epochs included), live virtual buses, compaction and cycle-handshake
state, the fault manager's armed schedule, admission and watchdog state,
traces and statistics — in **one** pickle, so every shared reference is
preserved exactly once and restored to the same shape.  A resumed run is
bit-exact with the uninterrupted one: same event order, same RNG draws,
same final statistics (property-tested in
``tests/supervision/test_checkpoint_roundtrip.py``).

This works because PR 2 removed every closure from the run's object
graph (bound methods and :func:`functools.partial` pickle; closures do
not) and made the kernel's event-sequence counter plain state.  The
simulator refuses to snapshot live generator processes — checkpointing
is defined for the callback-style RMB machinery.

File format: one JSON manifest line (format tag, :data:`SNAPSHOT_VERSION`,
sim time, caller metadata, and — for ring fabrics — the member ring
names under ``rings``) followed by the raw pickle payload.  The manifest
can be read without unpickling via :func:`describe_snapshot`.

.. warning::
   Snapshots are pickles: restoring one executes arbitrary code embedded
   in the file.  Only load snapshots you produced yourself.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import SnapshotError
from repro.sim.kernel import Periodic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.network import RMBRing

#: Bump on any change that makes old snapshots unreadable.
SNAPSHOT_VERSION = 1

_FORMAT = "rmb-snapshot"


def save_snapshot_bytes(ring: "RMBRing",
                        meta: Optional[dict[str, Any]] = None) -> bytes:
    """Serialise ``ring`` (manifest line + pickle payload).

    Args:
        ring: the run to capture; must not have live generator processes.
        meta: JSON-safe caller metadata stored in the manifest (the CLI
            records the run's absolute horizon here as ``run_until``).

    Raises:
        SnapshotError: when some object in the run graph cannot be
            pickled (a closure crept back in) or ``meta`` is not JSON.
    """
    manifest = {
        "format": _FORMAT,
        "version": SNAPSHOT_VERSION,
        "sim_time": ring.sim.now,
        "meta": dict(meta) if meta else {},
    }
    # Ring fabrics (TwoRingRMB, HierRMB) are snapshotted as one graph;
    # listing the member rings lets describe_snapshot() tell a fabric
    # snapshot from a flat-ring one without unpickling.
    members = getattr(ring, "rings", None)
    if isinstance(members, dict) and members:
        manifest["rings"] = list(members)
    try:
        header = json.dumps(manifest, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot meta is not JSON-safe: {exc}") from exc
    try:
        payload = pickle.dumps(ring, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"run state is not serialisable: {exc}"
        ) from exc
    return header + b"\n" + payload


def load_snapshot_bytes(data: bytes) -> tuple["RMBRing", dict[str, Any]]:
    """Inverse of :func:`save_snapshot_bytes`: ``(ring, manifest)``."""
    manifest = _parse_manifest(data)
    payload = data[data.index(b"\n") + 1:]
    try:
        ring = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"snapshot payload is corrupt: {exc}") from exc
    return ring, manifest


def save_snapshot(path: str, ring: "RMBRing",
                  meta: Optional[dict[str, Any]] = None) -> None:
    """Write a snapshot file atomically (temp file + rename)."""
    data = save_snapshot_bytes(ring, meta)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
    os.replace(tmp_path, path)


def load_snapshot(path: str) -> tuple["RMBRing", dict[str, Any]]:
    """Read a snapshot file; returns ``(ring, manifest)``."""
    with open(path, "rb") as handle:
        return load_snapshot_bytes(handle.read())


def describe_snapshot(path: str) -> dict[str, Any]:
    """Read only the manifest line of a snapshot (no unpickling)."""
    with open(path, "rb") as handle:
        first = handle.readline()
    return _parse_manifest(first)


def _parse_manifest(data: bytes) -> dict[str, Any]:
    newline = data.find(b"\n")
    header = data if newline < 0 else data[:newline]
    try:
        manifest = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotError(
            f"not a snapshot file (bad manifest line): {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT:
        raise SnapshotError("not a snapshot file (missing format tag)")
    version = manifest.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} unsupported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    return manifest


def resume_run(path: str, drain: bool = True,
               max_ticks: float = 1_000_000.0) -> tuple["RMBRing", dict[str, Any]]:
    """Load a snapshot and run the ring to its recorded horizon.

    When the manifest's meta carries ``run_until`` (the CLI always
    records it), the restored simulator runs to that *absolute* time —
    exactly where the uninterrupted run would have stopped — and then
    drains outstanding traffic.  Returns ``(ring, manifest)`` so the
    caller can read stats or keep driving the ring.
    """
    ring, manifest = load_snapshot(path)
    run_until = manifest.get("meta", {}).get("run_until")
    if run_until is not None and float(run_until) > ring.sim.now:
        ring.sim.run(until=float(run_until))
    if drain:
        ring.drain(max_ticks=max_ticks)
    return ring, manifest


class PeriodicCheckpointer:
    """Write a snapshot of ``ring`` every ``period`` ticks while it runs.

    The checkpointer is itself part of the captured graph (its pending
    probe sits in the kernel's event queue), so a restored run keeps
    checkpointing on schedule.  It uses ``reschedule_first`` so the next
    occurrence is already queued inside each snapshot — without that, a
    resumed run would never checkpoint again.

    Args:
        ring: the run to capture.
        period: ticks between snapshots.
        path_template: output path; a ``{tick}`` placeholder is replaced
            with the integer snapshot time (no placeholder = one file,
            overwritten in place).
        meta: extra manifest metadata merged into every snapshot.
    """

    def __init__(
        self,
        ring: "RMBRing",
        period: float,
        path_template: str,
        meta: Optional[dict[str, Any]] = None,
        label: str = "checkpoint",
    ) -> None:
        self._ring = ring
        self._path_template = path_template
        self._meta = dict(meta) if meta else {}
        self.written: list[str] = []
        self._periodic = Periodic(
            ring.sim, period, self._fire,
            label=label, reschedule_first=True,
        )

    def _fire(self) -> None:
        tick = self._ring.sim.now
        path = self._path_template.format(tick=int(tick))
        save_snapshot(path, self._ring,
                      meta={**self._meta, "checkpoint_time": tick})
        self.written.append(path)

    def stop(self) -> None:
        """Stop taking snapshots (already-written files are kept)."""
        self._periodic.stop()

"""Supervised execution for long RMB runs.

PR 1 taught the simulator to survive *hardware* faults; this package
addresses *runtime* failure of the run itself:

* :mod:`repro.supervision.watchdog` — a periodic no-progress probe with
  configurable recovery actions (force-teardown, backoff reset, or a
  structured :class:`~repro.supervision.incidents.Incident` report);
* :mod:`repro.supervision.admission` — per-INC admission control with
  shed-or-defer overload policy (wired through
  :class:`~repro.core.routing.RoutingEngine`);
* :mod:`repro.supervision.checkpoint` — deterministic checkpoint/restore
  of a complete run (kernel queue, RNG streams, grid, buses, cycle state,
  fault schedule, stats) to a versioned snapshot file.
"""

from repro.supervision.admission import AdmissionController
from repro.supervision.checkpoint import (
    SNAPSHOT_VERSION,
    describe_snapshot,
    load_snapshot,
    load_snapshot_bytes,
    save_snapshot,
    save_snapshot_bytes,
    PeriodicCheckpointer,
    resume_run,
)
from repro.supervision.incidents import Incident, IncidentLog
from repro.supervision.watchdog import Watchdog, WatchdogConfig

__all__ = [
    "AdmissionController",
    "Incident",
    "IncidentLog",
    "PeriodicCheckpointer",
    "SNAPSHOT_VERSION",
    "Watchdog",
    "WatchdogConfig",
    "describe_snapshot",
    "load_snapshot",
    "load_snapshot_bytes",
    "resume_run",
    "save_snapshot",
    "save_snapshot_bytes",
]

"""Single-target :class:`~repro.core.status.PortHealth` transitions.

These three functions are the *only* code in the repository that moves a
segment between OK / DYING / DEAD.  :class:`repro.faults.inject.FaultManager`
calls them when executing a timed :class:`~repro.faults.plan.FaultPlan`
against a live simulator, and :mod:`repro.protocol.explore` calls them when
exploring fail/repair interleavings nondeterministically — so the model
checker exercises exactly the health semantics the production fault layer
runs, rather than a parallel fault model.

The split of one *fail* into an announcement (``fail_target``, OK → DYING)
and a delayed kill (``kill_target``, DYING → DEAD plus occupant teardown)
mirrors the hardware's grace window: policy about *when* the kill happens
(a timer in the fault manager, an adversarial scheduler move in the
explorer) stays with the caller.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.segments import SegmentGrid
from repro.core.status import PortHealth

__all__ = ["fail_target", "kill_target", "repair_target"]


def fail_target(grid: SegmentGrid, segment: int, lane: int) -> bool:
    """Announce an outage: OK → DYING.

    The segment keeps carrying its current occupant (compaction's
    evacuation pass will try to migrate it off make-before-break) but
    accepts no new claims.  Returns ``False`` — and changes nothing —
    when the segment is already DYING or DEAD: the first announcement
    wins, exactly as in :meth:`FaultManager._fail`.
    """
    if grid.health(segment, lane) is not PortHealth.OK:
        return False
    grid.set_health(segment, lane, PortHealth.DYING)
    return True


def kill_target(
    grid: SegmentGrid,
    routing: object,
    segment: int,
    lane: int,
    on_dead: Optional[Callable[[Optional[int]], None]] = None,
) -> Tuple[bool, Optional[int]]:
    """Execute a pending outage: DYING → DEAD, tearing down any occupant.

    ``routing`` is the ring's :class:`~repro.core.routing.RoutingEngine`
    (or any object with its ``fail_bus`` signature); a bus still holding
    the segment when it dies loses its carrier and is torn down through
    the real protocol path (delivered messages complete, undelivered ones
    are Nacked back to the source).  ``on_dead`` — when given — fires
    after the health transition but *before* the teardown, receiving the
    occupant bus id (or ``None``); the fault manager records its
    ``fault_dead`` trace entry there so entry ordering matches the
    hardware's announce-then-lose-carrier sequence.

    Returns ``(applied, killed_bus_id)``.  ``applied`` is ``False`` when
    the segment is not currently DYING — a repair (or re-fail) since the
    announcement cancels the kill, the epoch rule of
    :class:`~repro.faults.inject.FaultManager`.
    """
    if grid.health(segment, lane) is not PortHealth.DYING:
        return False, None
    grid.set_health(segment, lane, PortHealth.DEAD)
    occupant = grid.occupant(segment, lane)
    if on_dead is not None:
        on_dead(occupant)
    if occupant is not None:
        routing.fail_bus(occupant, segment, lane)  # type: ignore[attr-defined]
    return True, occupant


def repair_target(grid: SegmentGrid, segment: int, lane: int) -> bool:
    """Return a segment to service: DYING/DEAD → OK.

    Returns ``False`` when the segment is already healthy.  Callers that
    track lane monotonicity must re-arm their trackers afterwards: an
    evacuation during the outage may have legally moved hops *up*.
    """
    if grid.health(segment, lane) is PortHealth.OK:
        return False
    grid.set_health(segment, lane, PortHealth.OK)
    return True

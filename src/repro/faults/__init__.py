"""Fault injection and graceful degradation for the RMB ring.

The paper's ring is built from independent lane segments and per-node
INCs; this package models what happens when some of them break.  See
``DESIGN.md`` ("Fault model") for the design decisions F1–F5.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a deterministic,
  serialisable schedule of segment / lane / INC outages and repairs.
* :mod:`repro.faults.inject` — :class:`FaultManager`: drives a plan
  through a live ring's grid, routing, and compaction engines.
* :mod:`repro.faults.transitions` — the single-target OK/DYING/DEAD
  health transitions both the manager and the protocol model checker
  apply (one fault semantics, two drivers).
"""

from repro.faults.inject import FaultManager, FaultStats
from repro.faults.transitions import fail_target, kill_target, repair_target
from repro.faults.plan import (
    DEFAULT_GRACE,
    FaultEvent,
    FaultKind,
    FaultPlan,
    merge,
    parse_spec,
    total_failed_segments,
)

__all__ = [
    "DEFAULT_GRACE",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultManager",
    "FaultStats",
    "fail_target",
    "kill_target",
    "merge",
    "parse_spec",
    "repair_target",
    "total_failed_segments",
]

"""Deterministic fault plans — *what* fails, *when*, and how gracefully.

A :class:`FaultPlan` is an immutable schedule of fault events applied to
one RMB ring.  Three granularities mirror the hardware's failure domains:

* ``segment`` — one lane-segment ``(i, l)`` (a broken wire bundle);
* ``lane`` — a whole lane ``l`` around the ring (a failed bus driver rail);
* ``inc`` — one INC's switching logic plus all of its output segments
  (the cycle-control logic is assumed fail-operational, so the odd/even
  handshake keeps running and Lemma 1 is preserved — fault model F5).

Failures are announced: at ``time`` the targets turn DYING (no new claims,
compaction migrates established buses off make-before-break) and only
``grace`` ticks later DEAD (any remaining occupant is torn down and the
source Nacked).  Repairs return targets to OK.

Plans are plain data: seeded random generation (:meth:`FaultPlan.random`),
JSON round-tripping, and a compact CLI spec language (:func:`parse_spec`)
all produce the same event tuples, so a run is reproducible from its seed
and plan alone.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import FaultError
from repro.sim.rng import RandomStream

#: Default DYING -> DEAD window, in ticks.  Two default compaction cycles
#: on each parity — enough for one escape move under the D2 schedule.
DEFAULT_GRACE = 16.0


class FaultKind(enum.Enum):
    """Failure domain granularity."""

    SEGMENT = "segment"
    LANE = "lane"
    INC = "inc"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition.

    Attributes:
        time: simulation tick the event fires at.
        kind: failure domain (segment / lane / inc).
        action: ``"fail"`` or ``"repair"``.
        segment: segment index (``SEGMENT`` kind) or INC index (``INC``).
        lane: lane index (``SEGMENT`` and ``LANE`` kinds).
        grace: DYING -> DEAD delay for ``fail`` actions (ignored by
            repairs).
    """

    time: float
    kind: FaultKind
    action: str = "fail"
    segment: Optional[int] = None
    lane: Optional[int] = None
    grace: float = DEFAULT_GRACE

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultError(f"fault event time must be >= 0, got {self.time}")
        if self.action not in ("fail", "repair"):
            raise FaultError(f"unknown fault action {self.action!r}")
        if self.grace < 0:
            raise FaultError(f"grace must be >= 0, got {self.grace}")
        if self.kind is FaultKind.SEGMENT:
            if self.segment is None or self.lane is None:
                raise FaultError("segment faults need segment and lane")
        elif self.kind is FaultKind.LANE:
            if self.lane is None:
                raise FaultError("lane faults need a lane index")
        elif self.kind is FaultKind.INC:
            if self.segment is None:
                raise FaultError("INC faults need an INC index (as segment)")

    def validate(self, nodes: int, lanes: int) -> None:
        """Raise :class:`FaultError` unless the event fits the geometry."""
        if self.segment is not None and not 0 <= self.segment < nodes:
            raise FaultError(
                f"fault targets segment/INC {self.segment}, ring has "
                f"{nodes} nodes"
            )
        if self.lane is not None and not 0 <= self.lane < lanes:
            raise FaultError(
                f"fault targets lane {self.lane}, ring has {lanes} lanes"
            )

    def targets(self, nodes: int, lanes: int) -> tuple[tuple[int, int], ...]:
        """The ``(segment, lane)`` pairs this event touches."""
        if self.kind is FaultKind.SEGMENT:
            return ((self.segment % nodes, self.lane),)
        if self.kind is FaultKind.LANE:
            return tuple((segment, self.lane) for segment in range(nodes))
        return tuple((self.segment % nodes, lane) for lane in range(lanes))

    def to_dict(self) -> dict:
        data = {"time": self.time, "kind": self.kind.value,
                "action": self.action}
        if self.segment is not None:
            data["segment"] = self.segment
        if self.lane is not None:
            data["lane"] = self.lane
        if self.action == "fail":
            data["grace"] = self.grace
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise FaultError(f"bad fault event {data!r}: {exc}") from exc
        return cls(
            time=float(data.get("time", 0.0)),
            kind=kind,
            action=data.get("action", "fail"),
            segment=data.get("segment"),
            lane=data.get("lane"),
            grace=float(data.get("grace", DEFAULT_GRACE)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of :class:`FaultEvent` rows."""

    events: tuple[FaultEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def validate(self, nodes: int, lanes: int) -> None:
        for event in self.events:
            event.validate(nodes, lanes)

    def sorted_events(self) -> list[FaultEvent]:
        """Events in firing order (time, fail-before-repair, target)."""
        return sorted(
            self.events,
            key=lambda e: (e.time, e.action, e.kind.value,
                           -1 if e.segment is None else e.segment,
                           -1 if e.lane is None else e.lane),
        )

    def describe(self) -> str:
        """One line per event, for logs and the CLI."""
        lines = []
        for event in self.sorted_events():
            where = {
                FaultKind.SEGMENT: f"segment ({event.segment}, {event.lane})",
                FaultKind.LANE: f"lane {event.lane}",
                FaultKind.INC: f"INC {event.segment}",
            }[event.kind]
            grace = f" grace={event.grace:g}" if event.action == "fail" else ""
            lines.append(f"t={event.time:g} {event.action} {where}{grace}")
        return "\n".join(lines) if lines else "(empty fault plan)"

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([event.to_dict() for event in self.events],
                          indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(rows, list):
            raise FaultError("fault plan JSON must be a list of events")
        return cls(tuple(FaultEvent.from_dict(row) for row in rows))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        nodes: int,
        lanes: int,
        fraction: float,
        at: float,
        rng: RandomStream,
        grace: float = DEFAULT_GRACE,
        spread: float = 0.0,
        repair_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Fail a random ``fraction`` of all lane-segments.

        Args:
            fraction: share of the ``nodes * lanes`` segments to fail.
            at: earliest failure time.
            rng: seeded stream — same stream state, same plan.
            grace: DYING -> DEAD window per failure.
            spread: failures are spread uniformly over ``[at, at+spread]``.
            repair_after: if given, each segment is repaired this many
                ticks after it dies.
        """
        if not 0.0 <= fraction <= 1.0:
            raise FaultError(f"fraction must be in [0, 1], got {fraction}")
        population = [(segment, lane)
                      for segment in range(nodes) for lane in range(lanes)]
        count = round(fraction * len(population))
        chosen = rng.sample(population, count)
        events = []
        for segment, lane in chosen:
            time = at + (rng.uniform(0.0, spread) if spread > 0 else 0.0)
            events.append(FaultEvent(time=time, kind=FaultKind.SEGMENT,
                                     segment=segment, lane=lane, grace=grace))
            if repair_after is not None:
                events.append(FaultEvent(
                    time=time + grace + repair_after, kind=FaultKind.SEGMENT,
                    action="repair", segment=segment, lane=lane,
                ))
        return cls(tuple(events))


def parse_spec(spec: str, nodes: int, lanes: int,
               seed: int = 0) -> FaultPlan:
    """Build a plan from a CLI spec string.

    Three forms, composable with ``;`` (except the file form):

    * ``@path.json`` — load a JSON event list from a file;
    * ``random:FRACTION@TIME[~GRACE]`` — seeded random segment outages;
    * ``seg:S,L@T[~GRACE]`` / ``lane:L@T[~GRACE]`` / ``inc:I@T[~GRACE]``
      — one explicit failure; prefix with ``+`` for a repair
      (``+seg:S,L@T``).

    Example: ``"seg:3,2@50;lane:0@100~32;+seg:3,2@200"``.
    """
    spec = spec.strip()
    if spec.startswith("@"):
        try:
            with open(spec[1:], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise FaultError(f"cannot read fault plan file: {exc}") from exc
        plan = FaultPlan.from_json(text)
        plan.validate(nodes, lanes)
        return plan

    events: list[FaultEvent] = []
    rng = RandomStream(seed, name="fault-plan")
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        action = "fail"
        if chunk.startswith("+"):
            action = "repair"
            chunk = chunk[1:]
        try:
            head, _, when = chunk.partition("@")
            kind_name, _, args = head.partition(":")
            grace = DEFAULT_GRACE
            if "~" in when:
                when, _, grace_text = when.partition("~")
                grace = float(grace_text)
            time = float(when)
            if kind_name == "random":
                if action == "repair":
                    raise FaultError("random: entries cannot be repairs")
                events.extend(FaultPlan.random(
                    nodes, lanes, fraction=float(args), at=time,
                    rng=rng, grace=grace,
                ).events)
            elif kind_name == "seg":
                segment_text, _, lane_text = args.partition(",")
                events.append(FaultEvent(
                    time=time, kind=FaultKind.SEGMENT, action=action,
                    segment=int(segment_text), lane=int(lane_text),
                    grace=grace,
                ))
            elif kind_name == "lane":
                events.append(FaultEvent(
                    time=time, kind=FaultKind.LANE, action=action,
                    lane=int(args), grace=grace,
                ))
            elif kind_name == "inc":
                events.append(FaultEvent(
                    time=time, kind=FaultKind.INC, action=action,
                    segment=int(args), grace=grace,
                ))
            else:
                raise FaultError(f"unknown fault kind {kind_name!r}")
        except (ValueError, IndexError) as exc:
            raise FaultError(
                f"cannot parse fault spec entry {chunk!r}: {exc}"
            ) from exc
    plan = FaultPlan(tuple(events))
    plan.validate(nodes, lanes)
    return plan


def merge(plans: Iterable[FaultPlan]) -> FaultPlan:
    """Concatenate several plans into one."""
    events: list[FaultEvent] = []
    for plan in plans:
        events.extend(plan.events)
    return FaultPlan(tuple(events))


def total_failed_segments(plan: FaultPlan, nodes: int,
                          lanes: int) -> int:
    """Distinct segments ever failed by the plan (repairs ignored)."""
    failed: set[tuple[int, int]] = set()
    for event in plan.events:
        if event.action == "fail":
            failed.update(event.targets(nodes, lanes))
    return len(failed)

"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live ring.

The :class:`FaultManager` is the only component allowed to change segment
health.  Each *fail* event runs in two stages:

1. at ``event.time`` the targets turn DYING — no new claims are accepted
   (:meth:`SegmentGrid.claim` rejects them) and the compaction engine's
   evacuation pass starts migrating any established occupant off the
   segment make-before-break;
2. ``event.grace`` ticks later the targets turn DEAD — a bus still holding
   the segment loses its carrier and is torn down via
   :meth:`BusManager.fail_bus` (delivered messages complete, undelivered
   ones are Nacked back to the source for retry).

INC failures additionally park the INC's compaction logic
(``dropped_incs``): its output column can no longer switch lanes, but its
cycle controller keeps running so the odd/even handshake — and with it
Lemma 1 — survives the dropout (fault model F5).

Repair events return targets to OK, un-park dropped INCs, and reset the
lane-monotonicity tracker (an earlier evacuation may have legally moved
hops *up*; after repair the downward-only rule re-arms from the current
placement).

A per-segment epoch counter guards the delayed kill: if a segment is
repaired (or re-failed) between DYING and its scheduled DEAD transition,
the stale kill is a no-op.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.wiring import Observability

from repro.core.segments import SegmentGrid
from repro.errors import FaultError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.transitions import fail_target, kill_target, repair_target
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class FaultStats:
    """Counters describing what the fault layer actually did."""

    segments_failed: int = 0        # OK -> DYING transitions applied
    segments_killed: int = 0        # DYING -> DEAD transitions applied
    segments_repaired: int = 0      # -> OK transitions applied
    buses_killed: int = 0           # occupants torn down at DEAD time
    incs_dropped: int = 0
    incs_restored: int = 0

    def summary(self) -> dict[str, int]:
        return {
            "segments_failed": self.segments_failed,
            "segments_killed": self.segments_killed,
            "segments_repaired": self.segments_repaired,
            "buses_killed": self.buses_killed,
            "incs_dropped": self.incs_dropped,
            "incs_restored": self.incs_restored,
        }


class FaultManager:
    """Arms a fault plan against one ring's simulator and engines.

    Args:
        plan: the validated schedule to apply.
        sim: the ring's simulator (events are scheduled on it).
        grid: the segment grid whose health states are driven.
        routing: the ring's :class:`~repro.core.routing.BusManager`
            (used to tear down occupants of newly dead segments).
        compaction: the ring's compaction engine (INC dropouts are
            registered in its ``dropped_incs`` set).
        monitor: optional :class:`~repro.core.invariants.InvariantMonitor`;
            its monotonicity tracker is reset on repairs.
        trace: optional recorder; emits ``fault_dying`` / ``fault_dead`` /
            ``fault_repair`` / ``inc_drop`` / ``inc_restore`` entries.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: Simulator,
        grid: SegmentGrid,
        routing,
        compaction=None,
        monitor=None,
        trace: Optional[TraceRecorder] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        plan.validate(grid.nodes, grid.lanes)
        self.plan = plan
        self.sim = sim
        self.grid = grid
        self.routing = routing
        self.compaction = compaction
        self.monitor = monitor
        self.trace = trace
        # Health transitions as first-class metrics: one kind-labelled
        # counter per applied transition when observability is armed.
        self.obs = obs
        self._obs_on = obs is not None and obs.enabled
        self.stats = FaultStats()
        self._epoch: dict[tuple[int, int], int] = {}
        self._armed = False
        # Transition listeners (e.g. the recovery manager's breakers):
        # plain objects with on_fault_transition(kind, segment, lane),
        # notified after each applied health arc.  Plain instances only —
        # the list rides checkpoint pickles with the rest of the manager.
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """Register ``listener.on_fault_transition(kind, segment, lane)``.

        ``kind`` is ``"dying"``, ``"dead"`` or ``"repair"`` — fired once
        per *applied* transition (announcements that lose to first-wins
        or stale epoch rules are not reported).
        """
        if not hasattr(self, "_listeners"):  # checkpoint from before PR 7
            self._listeners = []
        self._listeners.append(listener)

    def _notify(self, kind: str, segment: int, lane: int) -> None:
        for listener in getattr(self, "_listeners", ()):
            listener.on_fault_transition(kind, segment, lane)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every plan event on the simulator (idempotent)."""
        if self._armed:
            raise FaultError("fault plan already armed")
        self._armed = True
        for event in self.plan.sorted_events():
            fire_at = max(event.time, self.sim.now)
            # functools.partial over a bound method (not a lambda): armed
            # fault events live in the kernel queue and must survive a
            # checkpoint pickle.
            self.sim.schedule_at(
                fire_at,
                functools.partial(self._apply, event),
                label=f"fault.{event.action}",
            )

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        if event.action == "fail":
            self._fail(event)
        else:
            self._repair(event)

    def _fail(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.INC and self.compaction is not None:
            inc = event.segment % self.grid.nodes
            if inc not in self.compaction.dropped_incs:
                self.compaction.dropped_incs.add(inc)
                self.grid.touch(inc)
                self.stats.incs_dropped += 1
                self._record("inc_drop", f"inc={inc}")
        for segment, lane in event.targets(self.grid.nodes, self.grid.lanes):
            if not fail_target(self.grid, segment, lane):
                continue  # already failing or dead; first announcement wins
            self.stats.segments_failed += 1
            epoch = self._bump_epoch(segment, lane)
            self._record("fault_dying", f"segment=({segment}, {lane})",
                         grace=event.grace)
            self._notify("dying", segment, lane)
            if event.grace <= 0:
                self._kill(segment, lane, epoch)
            else:
                self.sim.schedule(
                    event.grace,
                    functools.partial(self._kill, segment, lane, epoch),
                    label="fault.kill",
                )

    def _kill(self, segment: int, lane: int, epoch: int) -> None:
        if self._epoch.get((segment, lane)) != epoch:
            return  # repaired or re-failed since the DYING announcement

        def note_dead(occupant: Optional[int]) -> None:
            self.stats.segments_killed += 1
            self._record("fault_dead", f"segment=({segment}, {lane})",
                         occupant=occupant)

        applied, occupant = kill_target(self.grid, self.routing, segment,
                                        lane, on_dead=note_dead)
        if applied:
            if occupant is not None:
                self.stats.buses_killed += 1
            self._notify("dead", segment, lane)

    def _repair(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.INC and self.compaction is not None:
            inc = event.segment % self.grid.nodes
            if inc in self.compaction.dropped_incs:
                self.compaction.dropped_incs.discard(inc)
                # A restored INC may immediately have legal moves again;
                # mark its column so the incremental candidate search
                # re-examines the neighbourhood.
                self.grid.touch(inc)
                self.stats.incs_restored += 1
                self._record("inc_restore", f"inc={inc}")
        for segment, lane in event.targets(self.grid.nodes, self.grid.lanes):
            if not repair_target(self.grid, segment, lane):
                continue  # already healthy
            self.stats.segments_repaired += 1
            self._bump_epoch(segment, lane)
            self._record("fault_repair", f"segment=({segment}, {lane})")
            # Notified after the epoch bump: a listener that re-fails the
            # target (quarantine hold) cannot be preempted by a stale
            # scheduled kill, and its DYING mark has no kill of its own.
            self._notify("repair", segment, lane)
        if self.monitor is not None:
            # Evacuations may have moved hops upward while the fault stood;
            # re-arm the downward-only tracker from the current placement.
            self.monitor.monotonicity.reset()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _bump_epoch(self, segment: int, lane: int) -> int:
        key = (segment, lane)
        self._epoch[key] = self._epoch.get(key, 0) + 1
        return self._epoch[key]

    def _record(self, kind: str, subject: str, **detail) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, kind, subject, **detail)
        if self._obs_on:
            self.obs.registry.counter(
                "rmb_fault_events_total",
                help="Fault-layer transitions applied, by kind",
                kind=kind,
            ).inc()

"""Hardware cost models — paper Section 3.2, reproduced formula by formula.

The paper compares architectures on the hardware needed to support a
*k-permutation* among *N* processors: number of links, number of cross
points (wire intersections), and VLSI layout area.  It assumes unit link
and cross-point costs, with wire length noted qualitatively.  This module
encodes each published formula; the benchmarks print them side by side
(experiments E9-E12) and the structural tests cross-check them against
the actually-constructed simulator topologies.

Where the paper gives only an order (``O(Nk)`` with a stated constant),
``area`` carries that constant and ``area_exact`` is ``False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostRow:
    """Costs of one architecture at one (N, k) design point.

    Attributes:
        architecture: short name.
        nodes / k: the design point.
        links: wire-bundle count (paper's link metric).
        cross_points: wire-intersection count.
        area: VLSI layout area in unit squares (order expression evaluated
            with the paper's stated constant).
        area_exact: True when the paper gives an exact expression.
        wire_length: qualitative wire-length note, quoted from Section 3.2.
    """

    architecture: str
    nodes: int
    k: int
    links: float
    cross_points: float
    area: float
    area_exact: bool
    wire_length: str

    def as_dict(self) -> dict[str, object]:
        return {
            "architecture": self.architecture,
            "N": self.nodes,
            "k": self.k,
            "links": round(self.links, 1),
            "cross_points": round(self.cross_points, 1),
            "area": round(self.area, 1),
            "wire_length": self.wire_length,
        }


def _check(nodes: int, k: int) -> None:
    if nodes < 2:
        raise ConfigurationError(f"need N >= 2, got {nodes}")
    if not 1 <= k <= nodes:
        raise ConfigurationError(f"need 1 <= k <= N, got k={k}, N={nodes}")


def _log2(value: float) -> float:
    return math.log2(value) if value > 1 else 0.0


def rmb_cost(nodes: int, k: int) -> CostRow:
    """RMB: links = N k (unit length), cross points = 3 N k, area Θ(N k).

    "each output can receive data from 3 inputs in each INC ... there are
    exactly N k output ports in all INCs together.  Hence the total number
    of cross points is 3 N k."
    """
    _check(nodes, k)
    return CostRow(
        architecture="rmb",
        nodes=nodes,
        k=k,
        links=nodes * k,
        cross_points=3 * nodes * k,
        area=nodes * k,
        area_exact=False,
        wire_length="constant (unit) length",
    )


def hypercube_cost(nodes: int, k: int) -> CostRow:
    """Plain binary hypercube: N log N links, area Θ(N²) in 2-D layout."""
    _check(nodes, k)
    log_n = _log2(nodes)
    return CostRow(
        architecture="hypercube",
        nodes=nodes,
        k=k,
        links=nodes * log_n,
        cross_points=nodes * log_n * log_n,
        area=float(nodes) ** 2,
        area_exact=False,
        wire_length="varies per dimension",
    )


def ehc_cost(nodes: int, k: int) -> CostRow:
    """Enhanced hypercube: degree n + 1 per node.

    "the EHC ... has N (log N + 1) links ... the number of cross points in
    the EHC structure is N (log N + 1)^2 and the area to lay it out is
    Θ(N²)."
    """
    _check(nodes, k)
    degree = _log2(nodes) + 1
    return CostRow(
        architecture="ehc",
        nodes=nodes,
        k=k,
        links=nodes * degree,
        cross_points=nodes * degree * degree,
        area=float(nodes) ** 2,
        area_exact=False,
        wire_length="varies per dimension",
    )


def gfc_cost(nodes: int, k: int) -> CostRow:
    """Scaled GFC for k-permutation support.

    "we can use a scaled GFC structure with degree d ... This will have a
    total of 2^d · d links and N / 2^d should be greater than k.  This
    yields that the total number of links is less than (N/k) log(N/k)."
    Cross points and area follow the EHC pattern on the 2^d super-nodes
    ("Similar is the case for the GFC") — quadratic in super-node count.
    """
    _check(nodes, k)
    super_nodes = max(2, nodes // k)
    degree = _log2(super_nodes)
    return CostRow(
        architecture="gfc",
        nodes=nodes,
        k=k,
        links=super_nodes * degree,
        cross_points=super_nodes * (degree + 1) ** 2 * k * k,
        area=float(super_nodes) ** 2 * k * k,
        area_exact=False,
        wire_length="varies per dimension",
    )


def fattree_cost(nodes: int, k: int) -> CostRow:
    """k-permutation fat tree (paper Figure 11).

    "the total number of links in this structure is N log k + N − 2k" ...
    "total number of cross points are (N/k − 1)·6·k² + (N/k)·O(k²) = O(Nk)
    ... where the constant is more than 6" ... "the total area of the
    k-permutation supporting fat-tree is 2N/k · O(k²) = O(Nk) with a
    constant of at least twelve."
    """
    _check(nodes, k)
    links = nodes * _log2(k) + nodes - 2 * k
    internal_nodes = max(1, nodes // k - 1)
    leaf_nodes = max(1, nodes // k)
    cross_points = internal_nodes * 6 * k * k + leaf_nodes * 6 * k * k
    return CostRow(
        architecture="fattree",
        nodes=nodes,
        k=k,
        links=links,
        cross_points=cross_points,
        area=12.0 * nodes * k,
        area_exact=False,
        wire_length="grows with tree level (H-tree layout)",
    )


def mesh_cost(nodes: int, k: int) -> CostRow:
    """2-D mesh scaled for k-permutations.

    "The mesh architecture has 2N links.  Each node has a 4x4 crossbar.
    Therefore the total number of cross points is 4·4·N ... to embed a
    k-permutation ... each dimension of the mesh has to be expanded by a
    factor of sqrt(k).  Thus the total area of the mesh becomes O(Nk)."
    Links and cross points scale with the widened channels (each of the 2N
    channels becomes sqrt(k)... sqrt(k) wires wide in each dimension,
    i.e. k-fold crossbars per node).
    """
    _check(nodes, k)
    return CostRow(
        architecture="mesh",
        nodes=nodes,
        k=k,
        links=2 * nodes * math.sqrt(k),
        cross_points=16 * nodes * k,
        area=float(nodes) * k,
        area_exact=False,
        wire_length="constant between neighbours",
    )


#: All architectures of the Section 3.2 comparison, paper order.
COST_MODELS = {
    "rmb": rmb_cost,
    "hypercube": hypercube_cost,
    "ehc": ehc_cost,
    "gfc": gfc_cost,
    "fattree": fattree_cost,
    "mesh": mesh_cost,
}


def cost_table(nodes: int, k: int,
               architectures: tuple[str, ...] = tuple(COST_MODELS)) -> list[CostRow]:
    """Cost rows for every requested architecture at one design point."""
    rows = []
    for name in architectures:
        if name not in COST_MODELS:
            raise ConfigurationError(
                f"unknown architecture {name!r}; "
                f"choose from {sorted(COST_MODELS)}"
            )
        rows.append(COST_MODELS[name](nodes, k))
    return rows


def area_advantage(nodes: int, k: int) -> dict[str, float]:
    """Area of each architecture relative to the RMB (>= 1 means the RMB
    is cheaper) — the headline of the paper's Section 3.2 review."""
    rmb = rmb_cost(nodes, k).area
    return {
        name: model(nodes, k).area / rmb
        for name, model in COST_MODELS.items()
    }


def wire_delay_factor(architecture: str, nodes: int, k: int = 1) -> float:
    """Relative cycle-time factor from each architecture's longest wire.

    The Review paragraph of Section 3.2 argues: "The RMB uses constant
    length wires and that offers a major advantage in operating a network
    at high clock rates."  A synchronous (or pipelined asynchronous)
    network's cycle time is bounded by its longest wire; this returns the
    longest-wire length of a standard 2-D layout, normalised to the RMB's
    unit-length neighbour segment, under a *linear* wire-delay model (the
    conservative choice — RC delay would be quadratic and favour short
    wires even more).

    Layout assumptions (classical results):

    * rmb / mesh — neighbour wires only: factor 1;
    * karyncube — folded torus: neighbour wires of length 2;
    * hypercube / ehc / gfc — embedding an n-cube in the plane needs
      highest-dimension wires of length ~sqrt(N)/2;
    * fattree — H-tree: root channels run ~sqrt(N)/2;
    * multibus — a global bus spans the whole machine: ~N;
    * crossbar — input/output lines cross the array: ~sqrt(N).
    """
    if nodes < 2:
        raise ConfigurationError(f"need N >= 2, got {nodes}")
    factors = {
        "rmb": 1.0,
        "rmb-2ring": 1.0,
        "mesh": 1.0,
        "karyncube": 2.0,
        "hypercube": math.sqrt(nodes) / 2,
        "ehc": math.sqrt(nodes) / 2,
        "gfc": math.sqrt(max(2, nodes // max(1, k))) / 2,
        "fattree": math.sqrt(nodes) / 2,
        "multibus": float(nodes),
        "crossbar": math.sqrt(nodes),
    }
    if architecture not in factors:
        raise ConfigurationError(
            f"unknown architecture {architecture!r}; "
            f"choose from {sorted(factors)}"
        )
    return max(1.0, factors[architecture])

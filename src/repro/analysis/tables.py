"""Plain-text table rendering for benchmark and example output.

No plotting dependency exists in this environment, so every reproduced
table and figure is printed as aligned text; ``render_table`` is the
single formatter all benchmarks share, keeping their output uniform and
diffable (EXPERIMENTS.md embeds these tables verbatim).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def render_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dictionaries as an aligned text table.

    Args:
        rows: one mapping per row.
        columns: column order; defaults to the first row's key order.
        title: optional heading line.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    keys = list(columns) if columns is not None else list(rows[0].keys())
    table = [[_format_cell(row.get(key, "")) for key in keys] for row in rows]
    widths = [
        max(len(key), *(len(line[index]) for line in table))
        for index, key in enumerate(keys)
    ]
    parts = []
    if title:
        parts.append(title)
    header = "  ".join(key.ljust(width) for key, width in zip(keys, widths))
    parts.append(header)
    parts.append("  ".join("-" * width for width in widths))
    for line in table:
        parts.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(parts)


def render_series(title: str, xs: Sequence[Any], ys: Sequence[Any],
                  x_label: str = "x", y_label: str = "y",
                  width: int = 50) -> str:
    """Render one (x, y) series as a labelled horizontal bar chart.

    The textual stand-in for the paper's figures: magnitude is readable at
    a glance and exact values are printed beside each bar.
    """
    numeric = [float(y) for y in ys]
    peak = max((abs(value) for value in numeric), default=0.0)
    scale = (width / peak) if peak > 0 else 0.0
    lines = [title, f"{x_label:>12} | {y_label}"]
    for x, y in zip(xs, numeric):
        bar = "#" * max(0, int(round(abs(y) * scale)))
        lines.append(f"{str(x):>12} | {bar} {y:.2f}")
    return "\n".join(lines)


def render_comparison(title: str,
                      rows: Sequence[Mapping[str, Any]],
                      baseline_key: str,
                      value_key: str,
                      label_key: str = "network") -> str:
    """Table plus a normalised column relative to a named baseline row."""
    baseline = None
    for row in rows:
        if row.get(label_key) == baseline_key:
            baseline = float(row[value_key])
            break
    augmented = []
    for row in rows:
        extended = dict(row)
        if baseline and baseline > 0:
            extended[f"{value_key}_vs_{baseline_key}"] = (
                float(row[value_key]) / baseline
            )
        augmented.append(extended)
    return render_table(augmented, title=title)

"""Offline-optimal scheduling of ring traffic.

The paper's concluding remarks define the *competitiveness* of the on-line
RMB protocol as "the ratio of its required time for communicating all
messages to the time required by an optimal off-line schedule" and leave
its evaluation to future work; experiment E16 carries that evaluation out.

The offline problem: messages are clockwise arcs with a service duration
(their flit count); the ring has ``k`` lanes; a feasible schedule assigns
each message a start time such that at every instant no segment is crossed
by more than ``k`` active messages and no node transmits or receives two
messages at once.  This module provides

* :func:`lower_bound` — a certified lower bound on any schedule's
  makespan (max of segment-load, node-load, and single-message bounds);
* :func:`greedy_schedule` — an earliest-start list schedule, a feasible
  (hence upper-bound) offline solution.

The true optimum lies between the two; competitiveness is reported against
both, bracketing the paper's ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.flits import Message
from repro.errors import WorkloadError


@dataclass(frozen=True)
class ScheduledMessage:
    """One message with its offline start time."""

    message: Message
    start: float
    nodes: int

    @property
    def finish(self) -> float:
        return self.start + service_time(self.message, self.nodes)


@dataclass
class OfflineSchedule:
    """A feasible offline schedule with its makespan."""

    entries: list[ScheduledMessage]
    nodes: int
    lanes: int

    @property
    def makespan(self) -> float:
        return max((entry.finish for entry in self.entries), default=0.0)


def _segments_crossed(message: Message, nodes: int) -> range:
    """Clockwise segment offsets ``source + j`` the message occupies."""
    return range(message.span(nodes))


def service_time(message: Message, nodes: int) -> float:
    """Ticks a message occupies its segments in the offline model.

    An offline scheduler on the *same hardware* still pays the flit train
    plus the pipeline drain across the message's span; it saves only the
    acknowledgement round-trip and all arbitration (it knows the plan in
    advance).  This keeps the baseline strong but physically realisable.
    """
    return message.total_flits + message.span(nodes) + 1


def lower_bound(messages: Sequence[Message], nodes: int, lanes: int) -> float:
    """A certified lower bound on any offline schedule's makespan."""
    if lanes < 1:
        raise WorkloadError("need at least one lane")
    segment_demand = [0.0] * nodes
    tx_demand: dict[int, float] = {}
    rx_demand: dict[int, float] = {}
    longest = 0.0
    for message in messages:
        duration = service_time(message, nodes)
        longest = max(longest, duration)
        for offset in _segments_crossed(message, nodes):
            segment_demand[(message.source + offset) % nodes] += duration
        tx_demand[message.source] = tx_demand.get(message.source, 0.0) + duration
        rx_demand[message.destination] = (
            rx_demand.get(message.destination, 0.0) + duration
        )
    segment_bound = max(segment_demand) / lanes if messages else 0.0
    node_bound = max(
        max(tx_demand.values(), default=0.0),
        max(rx_demand.values(), default=0.0),
    )
    return max(segment_bound, node_bound, longest)


def greedy_schedule(messages: Sequence[Message], nodes: int,
                    lanes: int) -> OfflineSchedule:
    """Best greedy list schedule over all lane budgets ``1..lanes``.

    The single-budget greedy (:func:`_greedy_schedule_with_budget`) is not
    monotone in the lane count: extra lanes admit earlier starts for
    long-span messages, which can push later endpoint conflicts into worse
    positions.  Since any schedule feasible with ``j`` lanes is feasible
    with ``k >= j``, running the greedy at every budget up to ``lanes``
    and keeping the best makespan restores monotonicity — the candidate
    set for ``k + 1`` lanes contains every candidate for ``k`` — at the
    cost of a factor-``k`` slowdown, negligible at experiment sizes.
    """
    if lanes < 1:
        raise WorkloadError("need at least one lane")
    best: OfflineSchedule | None = None
    for budget in range(1, lanes + 1):
        candidate = _greedy_schedule_with_budget(messages, nodes, budget)
        if best is None or candidate.makespan < best.makespan:
            best = candidate
    assert best is not None
    # Report against the full hardware: the schedule never uses more than
    # its winning budget, so it stays feasible on the k-lane ring.
    best.lanes = lanes
    return best


def _greedy_schedule_with_budget(messages: Sequence[Message], nodes: int,
                                 lanes: int) -> OfflineSchedule:
    """Earliest-feasible-start list scheduling (longest span first).

    Feasibility is tracked per segment as a multiset of busy intervals;
    a candidate start is accepted when every crossed segment has fewer
    than ``lanes`` overlapping transmissions and the endpoints are free.
    Longest-span-first ordering is the classic heuristic for interval
    packing on rings; tests verify feasibility, not optimality.
    """
    # Busy intervals per segment and per endpoint, kept sorted by start.
    segment_busy: list[list[tuple[float, float]]] = [[] for _ in range(nodes)]
    tx_busy: dict[int, list[tuple[float, float]]] = {}
    rx_busy: dict[int, list[tuple[float, float]]] = {}
    entries: list[ScheduledMessage] = []

    def overlaps(intervals: list[tuple[float, float]], start: float,
                 finish: float) -> int:
        return sum(1 for s, f in intervals if s < finish and start < f)

    def candidate_times(message: Message) -> list[float]:
        times = {0.0}
        for offset in _segments_crossed(message, nodes):
            for _, finish in segment_busy[(message.source + offset) % nodes]:
                times.add(finish)
        for _, finish in tx_busy.get(message.source, []):
            times.add(finish)
        for _, finish in rx_busy.get(message.destination, []):
            times.add(finish)
        return sorted(times)

    ordered = sorted(
        messages,
        key=lambda m: (-m.span(nodes), -service_time(m, nodes), m.message_id),
    )
    for message in ordered:
        duration = service_time(message, nodes)
        chosen = None
        for start in candidate_times(message):
            finish = start + duration
            if overlaps(tx_busy.get(message.source, []), start, finish):
                continue
            if overlaps(rx_busy.get(message.destination, []), start, finish):
                continue
            feasible = True
            for offset in _segments_crossed(message, nodes):
                segment = (message.source + offset) % nodes
                if overlaps(segment_busy[segment], start, finish) >= lanes:
                    feasible = False
                    break
            if feasible:
                chosen = start
                break
        if chosen is None:  # pragma: no cover - candidate set always works
            raise WorkloadError(
                f"no feasible start found for message {message.message_id}"
            )
        finish = chosen + duration
        for offset in _segments_crossed(message, nodes):
            segment_busy[(message.source + offset) % nodes].append(
                (chosen, finish)
            )
        tx_busy.setdefault(message.source, []).append((chosen, finish))
        rx_busy.setdefault(message.destination, []).append((chosen, finish))
        entries.append(ScheduledMessage(message, chosen, nodes))
    return OfflineSchedule(entries, nodes, lanes)


def verify_schedule(schedule: OfflineSchedule) -> None:
    """Raise :class:`WorkloadError` unless the schedule is feasible."""
    events: dict[int, list[tuple[float, int]]] = {}
    for entry in schedule.entries:
        for offset in _segments_crossed(entry.message, schedule.nodes):
            segment = (entry.message.source + offset) % schedule.nodes
            events.setdefault(segment, []).append((entry.start, +1))
            events.setdefault(segment, []).append((entry.finish, -1))
    for segment, changes in events.items():
        load = 0
        for _, delta in sorted(changes, key=lambda c: (c[0], c[1])):
            load += delta
            if load > schedule.lanes:
                raise WorkloadError(
                    f"offline schedule overloads segment {segment}"
                )

"""Parameter-sweep helpers shared by benchmarks and examples.

A sweep maps a cartesian grid of parameters through a measurement function
into result rows, with deterministic per-point seeds so any single point
can be re-run in isolation and reproduce exactly.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.sim.rng import SeedSequence


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of parameter dicts.

    Example:
        >>> grid(n=[8, 16], k=[2, 4])[0]
        {'n': 8, 'k': 2}
    """
    names = list(axes)
    points = []
    for values in itertools.product(*(list(axes[name]) for name in names)):
        points.append(dict(zip(names, values)))
    return points


def run_sweep(
    points: Sequence[Mapping[str, Any]],
    measure: Callable[..., Mapping[str, Any]],
    root_seed: int = 0,
    repeats: int = 1,
) -> list[dict[str, Any]]:
    """Evaluate ``measure(**point, seed=...)`` over every point.

    Args:
        points: parameter dictionaries (from :func:`grid` or hand-built).
        measure: measurement callable; must accept a ``seed`` keyword and
            return a mapping of result fields.
        root_seed: root of the per-point seed derivation.
        repeats: measurements per point (seeded independently); each
            repeat produces its own row with a ``repeat`` field.

    Returns:
        One merged dict per (point, repeat): parameters, then results.
    """
    seeds = SeedSequence(root_seed)
    rows = []
    for index, point in enumerate(points):
        for repeat in range(repeats):
            stream = seeds.stream(f"point{index}.rep{repeat}")
            seed = stream.randint(0, 2**31 - 1)
            result = measure(**dict(point), seed=seed)
            row: dict[str, Any] = dict(point)
            if repeats > 1:
                row["repeat"] = repeat
            row.update(result)
            rows.append(row)
    return rows


def _sweep_jobs(
    points: Sequence[Mapping[str, Any]],
    root_seed: int,
    repeats: int,
) -> list[tuple[int, int, dict[str, Any], int]]:
    """The (index, repeat, point, seed) work list shared by both runners.

    Seeds are derived exactly as :func:`run_sweep` derives them —
    ``SeedSequence(root_seed).stream(f"point{i}.rep{r}")`` — so the
    parallel runner reproduces the serial runner's rows bit for bit.
    """
    seeds = SeedSequence(root_seed)
    jobs = []
    for index, point in enumerate(points):
        for repeat in range(repeats):
            stream = seeds.stream(f"point{index}.rep{repeat}")
            seed = stream.randint(0, 2**31 - 1)
            jobs.append((index, repeat, dict(point), seed))
    return jobs


def _run_job(
    job: tuple[int, int, dict[str, Any], int],
    measure: Callable[..., Mapping[str, Any]],
    repeats: int,
) -> dict[str, Any]:
    index, repeat, point, seed = job
    result = measure(**point, seed=seed)
    row: dict[str, Any] = dict(point)
    if repeats > 1:
        row["repeat"] = repeat
    row.update(result)
    return row


class _JobRunner:
    """Picklable worker closure for :func:`run_sweep_parallel`.

    ``multiprocessing`` needs to pickle the callable it maps; a module-level
    class instance survives the trip where a lambda would not.  ``measure``
    itself must therefore be a module-level function too (the same
    constraint every multiprocessing map imposes).
    """

    def __init__(self, measure: Callable[..., Mapping[str, Any]],
                 repeats: int) -> None:
        self._measure = measure
        self._repeats = repeats

    def __call__(self, job: tuple[int, int, dict[str, Any], int]
                 ) -> dict[str, Any]:
        return _run_job(job, self._measure, self._repeats)


def run_sweep_parallel(
    points: Sequence[Mapping[str, Any]],
    measure: Callable[..., Mapping[str, Any]],
    root_seed: int = 0,
    repeats: int = 1,
    processes: Optional[int] = None,
) -> list[dict[str, Any]]:
    """:func:`run_sweep` fanned out over worker processes.

    Each (point, repeat) pair is an independent simulation with a
    deterministically derived seed, so the sweep parallelises without
    any cross-talk.  Rows come back in the same order ``run_sweep``
    would produce them (the pool map is order-preserving), and each
    row's content is bit-identical to the serial runner's because the
    seed derivation is shared — the only difference is wall-clock time.

    Args:
        points: parameter dictionaries (from :func:`grid` or hand-built).
        measure: measurement callable; must be picklable (defined at
            module level) and accept a ``seed`` keyword.
        root_seed: root of the per-point seed derivation.
        repeats: measurements per point.
        processes: worker count; defaults to the machine's CPU count.
            With one worker (or one job) the pool is skipped entirely
            and the jobs run in-process.

    Returns:
        One merged dict per (point, repeat), in serial-sweep order.
    """
    jobs = _sweep_jobs(points, root_seed, repeats)
    if processes is None:
        processes = os.cpu_count() or 1
    runner = _JobRunner(measure, repeats)
    if processes <= 1 or len(jobs) <= 1:
        return [runner(job) for job in jobs]
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(processes, len(jobs))) as pool:
        return pool.map(runner, jobs)


def aggregate_mean(rows: Sequence[Mapping[str, Any]],
                   group_by: Sequence[str],
                   fields: Sequence[str]) -> list[dict[str, Any]]:
    """Average ``fields`` over rows sharing the same ``group_by`` values."""
    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    for row in rows:
        key = tuple(row[name] for name in group_by)
        groups.setdefault(key, []).append(row)
    aggregated = []
    for key, members in groups.items():
        entry: dict[str, Any] = dict(zip(group_by, key))
        for field in fields:
            values = [float(member[field]) for member in members]
            entry[field] = sum(values) / len(values)
        entry["samples"] = len(members)
        aggregated.append(entry)
    return aggregated

"""Parameter-sweep helpers shared by benchmarks and examples.

A sweep maps a cartesian grid of parameters through a measurement function
into result rows, with deterministic per-point seeds so any single point
can be re-run in isolation and reproduce exactly.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.sim.rng import SeedSequence


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of parameter dicts.

    Example:
        >>> grid(n=[8, 16], k=[2, 4])[0]
        {'n': 8, 'k': 2}
    """
    names = list(axes)
    points = []
    for values in itertools.product(*(list(axes[name]) for name in names)):
        points.append(dict(zip(names, values)))
    return points


def run_sweep(
    points: Sequence[Mapping[str, Any]],
    measure: Callable[..., Mapping[str, Any]],
    root_seed: int = 0,
    repeats: int = 1,
) -> list[dict[str, Any]]:
    """Evaluate ``measure(**point, seed=...)`` over every point.

    Args:
        points: parameter dictionaries (from :func:`grid` or hand-built).
        measure: measurement callable; must accept a ``seed`` keyword and
            return a mapping of result fields.
        root_seed: root of the per-point seed derivation.
        repeats: measurements per point (seeded independently); each
            repeat produces its own row with a ``repeat`` field.

    Returns:
        One merged dict per (point, repeat): parameters, then results.
    """
    seeds = SeedSequence(root_seed)
    rows = []
    for index, point in enumerate(points):
        for repeat in range(repeats):
            stream = seeds.stream(f"point{index}.rep{repeat}")
            seed = stream.randint(0, 2**31 - 1)
            result = measure(**dict(point), seed=seed)
            row: dict[str, Any] = dict(point)
            if repeats > 1:
                row["repeat"] = repeat
            row.update(result)
            rows.append(row)
    return rows


def aggregate_mean(rows: Sequence[Mapping[str, Any]],
                   group_by: Sequence[str],
                   fields: Sequence[str]) -> list[dict[str, Any]]:
    """Average ``fields`` over rows sharing the same ``group_by`` values."""
    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    for row in rows:
        key = tuple(row[name] for name in group_by)
        groups.setdefault(key, []).append(row)
    aggregated = []
    for key, members in groups.items():
        entry: dict[str, Any] = dict(zip(group_by, key))
        for field in fields:
            values = [float(member[field]) for member in members]
            entry[field] = sum(values) / len(values)
        entry["samples"] = len(members)
        aggregated.append(entry)
    return aggregated

"""Bisection bandwidth — analytic values plus empirical graph cuts.

Paper Section 3.2: the k-permutation capability metric "is equivalent to
the bisection bandwidth.  The bisection bandwidth of the RMB network is
equal to k · B_c where B_c is the bandwidth of one link."

Analytic values are in link-bandwidth units (B_c = 1).  The empirical
functions count simulator channels crossing a halving cut, used by tests
to confirm the built topologies really have the claimed bisections.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.networks.wormhole import WormholeEngine


def rmb_bisection(nodes: int, k: int) -> float:
    """k: cutting the ring severs two columns, each k one-way segments;
    the paper counts the k lanes of one crossing (traffic is one-way, so
    only one cut column carries any given flow)."""
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    return float(k)


def hypercube_bisection(nodes: int, k: int) -> float:
    """N/2 dimension-(n-1) links cross the halving cut."""
    return nodes / 2.0


def ehc_bisection(nodes: int, k: int, doubled_dimension_cut: bool = True) -> float:
    """N/2 links, or N when the doubled dimension is the one cut."""
    return float(nodes) if doubled_dimension_cut else nodes / 2.0


def fattree_bisection(nodes: int, k: int) -> float:
    """The k-capped fat tree carries min(2**(levels-1), k) at the root."""
    levels = max(1, int(math.log2(nodes)))
    return float(min(1 << (levels - 1), k))


def mesh_bisection(nodes: int, k: int) -> float:
    """sqrt(N) channels cross the cut, each sqrt(k) wires wide."""
    return math.sqrt(nodes) * math.sqrt(k)


ANALYTIC_BISECTION = {
    "rmb": rmb_bisection,
    "hypercube": hypercube_bisection,
    "ehc": ehc_bisection,
    "fattree": fattree_bisection,
    "mesh": mesh_bisection,
}


def empirical_bisection(engine: WormholeEngine,
                        in_half) -> float:
    """One-way wire count from the ``in_half`` node set to its complement.

    Args:
        engine: a built wormhole network.
        in_half: predicate over engine node ids selecting one half.
    """
    crossing = 0
    for channel in engine.channels:
        if in_half(channel.source) and not in_half(channel.sink):
            crossing += channel.multiplicity
    return float(crossing)


def index_half(nodes: int):
    """The standard halving predicate: node id below N/2."""
    boundary = nodes // 2

    def predicate(node: int) -> bool:
        return node < boundary

    return predicate


def dimension_half(bit: int):
    """Hypercube halving along address bit ``bit``."""

    def predicate(node: int) -> bool:
        return (node >> bit) & 1 == 0

    return predicate

"""Competitiveness of the on-line RMB protocol (experiment E16).

For a finite message batch, run the real RMB simulation and compare its
makespan with the offline bounds of :mod:`repro.analysis.offline`:

* ``ratio_vs_lower``: makespan / certified lower bound — an upper bound on
  the true competitive ratio (pessimistic for the RMB);
* ``ratio_vs_greedy``: makespan / feasible greedy schedule — comparison
  against a realisable offline plan (the fairer number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.offline import greedy_schedule, lower_bound, verify_schedule
from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.core.network import RMBRing


@dataclass(frozen=True)
class CompetitivenessReport:
    """Result of one competitiveness measurement."""

    nodes: int
    lanes: int
    messages: int
    online_makespan: float
    offline_lower_bound: float
    offline_greedy_makespan: float

    @property
    def ratio_vs_lower(self) -> float:
        if self.offline_lower_bound == 0:
            return 1.0
        return self.online_makespan / self.offline_lower_bound

    @property
    def ratio_vs_greedy(self) -> float:
        if self.offline_greedy_makespan == 0:
            return 1.0
        return self.online_makespan / self.offline_greedy_makespan

    def as_dict(self) -> dict[str, float]:
        return {
            "N": self.nodes,
            "k": self.lanes,
            "messages": self.messages,
            "online": round(self.online_makespan, 1),
            "offline_LB": round(self.offline_lower_bound, 1),
            "offline_greedy": round(self.offline_greedy_makespan, 1),
            "ratio_vs_LB": round(self.ratio_vs_lower, 3),
            "ratio_vs_greedy": round(self.ratio_vs_greedy, 3),
        }


def measure_competitiveness(
    config: RMBConfig,
    messages: Sequence[Message],
    seed: int = 0,
    max_ticks: float = 2_000_000.0,
) -> CompetitivenessReport:
    """Run the batch online and offline; return the bracketing ratios."""
    ring = RMBRing(config, seed=seed, trace_kinds=set())
    ring.submit_all(messages)
    online_makespan = ring.drain(max_ticks=max_ticks)

    bound = lower_bound(messages, config.nodes, config.lanes)
    schedule = greedy_schedule(messages, config.nodes, config.lanes)
    verify_schedule(schedule)
    return CompetitivenessReport(
        nodes=config.nodes,
        lanes=config.lanes,
        messages=len(messages),
        online_makespan=online_makespan,
        offline_lower_bound=bound,
        offline_greedy_makespan=schedule.makespan,
    )

"""Analysis layer: cost models, bisection, offline scheduling, tables."""

from repro.analysis.bisection import (
    ANALYTIC_BISECTION,
    dimension_half,
    empirical_bisection,
    index_half,
)
from repro.analysis.competitive import (
    CompetitivenessReport,
    measure_competitiveness,
)
from repro.analysis.cost import (
    COST_MODELS,
    CostRow,
    area_advantage,
    cost_table,
    ehc_cost,
    fattree_cost,
    gfc_cost,
    hypercube_cost,
    mesh_cost,
    rmb_cost,
    wire_delay_factor,
)
from repro.analysis.latency_model import (
    LatencyBreakdown,
    bandwidth_per_circuit,
    efficiency,
    predict_message,
    unloaded_latency,
)
from repro.analysis.offline import (
    OfflineSchedule,
    ScheduledMessage,
    greedy_schedule,
    lower_bound,
    service_time,
    verify_schedule,
)
from repro.analysis.sweep import (
    aggregate_mean,
    grid,
    run_sweep,
    run_sweep_parallel,
)
from repro.analysis.tables import render_comparison, render_series, render_table

__all__ = [
    "ANALYTIC_BISECTION",
    "COST_MODELS",
    "CompetitivenessReport",
    "CostRow",
    "LatencyBreakdown",
    "OfflineSchedule",
    "ScheduledMessage",
    "aggregate_mean",
    "area_advantage",
    "bandwidth_per_circuit",
    "cost_table",
    "dimension_half",
    "efficiency",
    "ehc_cost",
    "empirical_bisection",
    "fattree_cost",
    "gfc_cost",
    "greedy_schedule",
    "grid",
    "hypercube_cost",
    "index_half",
    "lower_bound",
    "measure_competitiveness",
    "mesh_cost",
    "predict_message",
    "render_comparison",
    "render_series",
    "render_table",
    "rmb_cost",
    "run_sweep",
    "run_sweep_parallel",
    "service_time",
    "unloaded_latency",
    "verify_schedule",
    "wire_delay_factor",
]

"""Closed-form latency model for an unloaded RMB ring.

The protocol's timing decomposes exactly on an idle network (no
contention, no retries); the model below is validated tick-for-tick
against the simulator in ``tests/analysis/test_latency_model.py``, which
pins down the engine's timing semantics and guards against accidental
off-by-one regressions in the hot path.

With flit period ``T`` and clockwise span ``s`` (segments crossed):

* **injection** — 1 flit tick (the HF enters the top lane);
* **header transit** — ``s - 1`` further ticks to reach the destination;
* **Hack return** — ``s`` ticks back along the virtual bus;
* **data streaming** — ``L`` ticks: the first data flit is emitted in
  the same tick the Hack lands, and the FF's emission tick is absorbed
  into the drain phase;
* **FF drain** — ``s`` ticks to the destination: *delivery*;
* **teardown** — ``s`` more ticks of Fack walk until the source's ports
  free: *completion*.

All phase boundaries in the engine land on flit-tick edges, so each
phase contributes an integral number of ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-phase tick counts for one unloaded transfer."""

    injection: float
    header_transit: float
    ack_return: float
    streaming: float
    drain: float
    teardown: float

    @property
    def setup(self) -> float:
        """Request to circuit-established (Hack at the source)."""
        return self.injection + self.header_transit + self.ack_return

    @property
    def delivery(self) -> float:
        """Request to last flit at the destination."""
        return self.setup + self.streaming + self.drain

    @property
    def completion(self) -> float:
        """Request to all ports freed at the source."""
        return self.delivery + self.teardown

    def as_dict(self) -> dict[str, float]:
        return {
            "injection": self.injection,
            "header_transit": self.header_transit,
            "ack_return": self.ack_return,
            "streaming": self.streaming,
            "drain": self.drain,
            "teardown": self.teardown,
            "setup": self.setup,
            "delivery": self.delivery,
            "completion": self.completion,
        }


def unloaded_latency(span: int, data_flits: int,
                     flit_period: float = 1.0) -> LatencyBreakdown:
    """Phase breakdown for a lone message crossing ``span`` segments.

    Raises:
        ConfigurationError: for a non-positive span or negative payload.
    """
    if span < 1:
        raise ConfigurationError(f"span must be >= 1, got {span}")
    if data_flits < 0:
        raise ConfigurationError("data_flits must be >= 0")
    period = flit_period
    return LatencyBreakdown(
        injection=1 * period,
        header_transit=(span - 1) * period,
        ack_return=span * period,
        streaming=data_flits * period,
        drain=span * period,
        teardown=span * period,
    )


def predict_message(config: RMBConfig, message: Message) -> LatencyBreakdown:
    """Unloaded breakdown for a concrete message on a concrete ring."""
    span = message.span(config.nodes)
    return unloaded_latency(span, message.data_flits, config.flit_period)


def bandwidth_per_circuit(data_flits: int, span: int,
                          flit_period: float = 1.0) -> float:
    """Sustained payload flits per tick of one repeating transfer.

    The circuit-switched overhead (setup + teardown round trips) is
    amortised over the payload; long messages approach ``1 / T``, the
    wire rate — quantifying the paper's advice that the RMB favours
    streaming transfers.
    """
    breakdown = unloaded_latency(span, data_flits, flit_period)
    return data_flits / breakdown.completion


def efficiency(data_flits: int, span: int) -> float:
    """Fraction of a transfer's lifetime spent moving payload."""
    breakdown = unloaded_latency(span, data_flits)
    return breakdown.streaming / breakdown.completion

"""The experiment registry: one record per reproduced paper artefact.

DESIGN.md §5 defines the experiment index; this module is its
machine-readable twin, used by tests to guarantee that every registered
experiment has a live benchmark module and by the ``experiment_index``
example to print reproduction status.  Keeping the registry in code means
the docs cannot silently drift from what actually runs.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Experiment:
    """One reproduced table/figure/claim.

    Attributes:
        experiment_id: E-number from DESIGN.md §5.
        title: short human name.
        paper_artefact: the paper table/figure/claim being reproduced.
        bench_module: file name under ``benchmarks/``.
        kind: ``exact`` (formula/structural identity), ``behavioural``
            (property demonstrated on the simulator), or ``new`` (analysis
            the paper proposed or omitted, carried out here).
    """

    experiment_id: str
    title: str
    paper_artefact: str
    bench_module: str
    kind: str

    def result_file(self) -> str:
        """Stem of the archived output under ``benchmarks/results/``."""
        return self.experiment_id.replace("-", "_")


_RAW = [
    ("E1", "status-code census", "Table 1 / Figure 6",
     "bench_status_codes.py", "behavioural"),
    ("E2", "top-lane entry and packing", "Figures 2/3",
     "bench_compaction_packing.py", "behavioural"),
    ("E3", "make-before-break", "Figure 4",
     "bench_make_before_break.py", "behavioural"),
    ("E4", "two-cycle lane drop", "Figure 5",
     "bench_two_cycle_move.py", "exact"),
    ("E5", "four move conditions", "Figure 7",
     "bench_move_conditions.py", "behavioural"),
    ("E6", "odd/even handshake FSM", "Figures 9/10, Table 2",
     "bench_cycle_fsm.py", "behavioural"),
    ("E7", "cycle-skew bound", "Lemma 1",
     "bench_lemma1_skew.py", "behavioural"),
    ("E8", "full utilisation", "Theorem 1",
     "bench_theorem1_utilization.py", "behavioural"),
    ("E9-E12", "hardware cost table", "Section 3.2 formulas",
     "bench_cost_table.py", "exact"),
    ("E13", "k-permutation capability", "Section 3.2 metric",
     "bench_kpermutation.py", "behavioural"),
    ("E14", "permutation race", "Section 3 comparison",
     "bench_permutation_race.py", "behavioural"),
    ("E15", "virtual-bus count", "Section 4 remark",
     "bench_virtual_bus_count.py", "behavioural"),
    ("E16", "competitiveness", "Section 4 proposal",
     "bench_competitiveness.py", "new"),
    ("E17", "compaction ablation", "Section 2.3 remark",
     "bench_ablation_compaction.py", "behavioural"),
    ("E18", "one vs two rings", "Section 2.1 remark",
     "bench_two_rings.py", "behavioural"),
    ("E19", "grid of rings", "Section 4 future work",
     "bench_grid_of_rings.py", "new"),
    ("E20", "multicast", "Sections 1/4 deferred extension",
     "bench_multicast.py", "new"),
    ("E21", "design-decision ablations", "DESIGN.md D1-D9",
     "bench_ablation_protocol.py", "new"),
    ("E22", "real-time streams", "Section 1 motivation",
     "bench_realtime_streams.py", "new"),
    ("E23", "access fairness", "Section 2.3 worry",
     "bench_fairness.py", "behavioural"),
    ("E24", "wire-delay scaling", "Section 3.2 Review",
     "bench_wire_length.py", "new"),
    ("E25", "latency vs offered load", "standard evaluation (omitted)",
     "bench_load_sweep.py", "new"),
    ("E26", "graceful degradation under faults", "DESIGN.md fault model",
     "bench_fault_sweep.py", "new"),
    ("E27", "admission control under overload", "DESIGN.md supervision model",
     "bench_admission_overload.py", "new"),
]

#: Every reproduced artefact, ordered as in DESIGN.md §5.
EXPERIMENTS: tuple[Experiment, ...] = tuple(
    Experiment(*row) for row in _RAW
)

_BY_ID = {experiment.experiment_id: experiment
          for experiment in EXPERIMENTS}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by its E-number.

    Raises:
        ConfigurationError: for an unknown id.
    """
    if experiment_id not in _BY_ID:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(sorted(_BY_ID))}"
        )
    return _BY_ID[experiment_id]


def benchmarks_dir() -> pathlib.Path:
    """Repository ``benchmarks/`` directory (resolved from this file)."""
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks"


def registry_status(bench_dir: pathlib.Path) -> list[dict[str, object]]:
    """Per-experiment status rows: bench present? result archived?"""
    results_dir = bench_dir / "results"
    rows = []
    for experiment in EXPERIMENTS:
        bench_path = bench_dir / experiment.bench_module
        archived = any(
            path.name.startswith(experiment.result_file())
            for path in results_dir.glob("*.txt")
        ) if results_dir.exists() else False
        rows.append({
            "id": experiment.experiment_id,
            "title": experiment.title,
            "paper artefact": experiment.paper_artefact,
            "kind": experiment.kind,
            "bench exists": bench_path.exists(),
            "result archived": archived,
        })
    return rows

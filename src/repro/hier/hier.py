"""The N-ring hierarchy: local RMB rings bridged by a global ring.

:class:`HierRMB` realises the ROADMAP's "N-ring hierarchical topology
engine" as a :class:`~repro.hier.fabric.RingFabric`: ``m`` local rings of
``n`` nodes each, plus one global ring of ``m`` nodes.  Node 0 of each
local ring is that ring's *bridge*; global-ring node ``L`` is the same
physical station as local ring ``L``'s bridge.  A fabric node address is
``u = L * n + i`` (local ring ``L``, local index ``i``).

Routing is store-and-forward through the bridges (the hierarchical-rings
design of Ausavarungnirun et al., minus deflection — RMB circuits give
us lossless legs):

* same-ring traffic (``L == M``) takes a single local hop and never
  touches the global ring;
* cross-ring traffic chains up to three hops — ``local L: i -> 0``
  (skipped when the source *is* the bridge), ``global: L -> M``, and
  ``local M: 0 -> j`` (skipped when the destination is the bridge) —
  the shortest chain that respects the hierarchy.

Multicast is supported within one local ring (the paper's tap semantics
apply unchanged on the leg); cross-ring multicast is refused.

Wire budget: a flat RMB ring with ``m * n`` nodes and ``k`` lanes costs
``m * n * k`` segments.  The default split spends ``k - 1`` lanes on
each local ring and ``min(n, max(2, k))`` on the global ring, for a
total of ``m*n*(k-1) + m*min(n, max(2, k))`` — never more than the flat
budget (the arena's honest-accounting requirement; see
:meth:`HierRMB.wire_budget`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.core.network import RMBRing
from repro.errors import ProtocolError
from repro.hier.fabric import Hop, RingFabric, RouteMap

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.wiring import Observability


def local_ring_name(local: int) -> str:
    """Canonical member-ring name for local ring ``local``."""
    return f"local{local}"


#: Canonical member-ring name for the global ring.
GLOBAL_RING = "global"


@dataclass(frozen=True)
class HierRouteMap(RouteMap):
    """Bridge routing over ``locals`` rings of ``nodes_per_local`` nodes.

    Pure address arithmetic — no state, no randomness — so hop trails
    are a deterministic function of the message (pinned by the
    Hypothesis suite in ``tests/hier/``).
    """

    locals: int
    nodes_per_local: int

    @property
    def nodes(self) -> int:
        """Total addressable fabric nodes."""
        return self.locals * self.nodes_per_local

    def split(self, node: int) -> Tuple[int, int]:
        """``(local ring, local index)`` of fabric address ``node``."""
        if not 0 <= node < self.nodes:
            raise ProtocolError(
                f"fabric address {node} out of range for "
                f"{self.locals}x{self.nodes_per_local} hierarchy "
                f"(0..{self.nodes - 1})"
            )
        return divmod(node, self.nodes_per_local)

    def plan(self, message: Message) -> Tuple[Hop, ...]:
        source_ring, i = self.split(message.source)
        dest_ring, j = self.split(message.destination)
        if source_ring == dest_ring:
            taps = []
            for tap in message.extra_destinations:
                tap_ring, tap_index = self.split(tap)
                if tap_ring != source_ring:
                    raise ProtocolError(
                        f"multicast tap {tap} is on local ring {tap_ring}, "
                        f"but the message travels only on ring "
                        f"{source_ring}; hier multicast must stay within "
                        f"one local ring"
                    )
                taps.append(tap_index)
            return (Hop(
                ring=local_ring_name(source_ring),
                source=i, destination=j,
                extra_destinations=tuple(taps),
            ),)
        if message.extra_destinations:
            raise ProtocolError(
                f"message {message.message_id} multicasts across local "
                f"rings ({source_ring} -> {dest_ring}); hier multicast "
                f"must stay within one local ring"
            )
        hops: List[Hop] = []
        if i != 0:
            hops.append(Hop(
                ring=local_ring_name(source_ring), source=i, destination=0))
        hops.append(Hop(
            ring=GLOBAL_RING, source=source_ring, destination=dest_ring))
        if j != 0:
            hops.append(Hop(
                ring=local_ring_name(dest_ring), source=0, destination=j))
        return tuple(hops)


class HierRMB(RingFabric):
    """A hierarchy of local RMB rings bridged by a global ring.

    Args:
        locals: number of local rings ``m`` (even, at least 4 — the
            global ring is itself an RMB ring and inherits the even-N
            protocol requirement).
        nodes_per_local: nodes ``n`` on each local ring (even, >= 4).
        lanes: the flat-ring lane budget ``k`` the hierarchy must stay
            within (see :meth:`wire_budget`).
        lanes_split: explicit ``(local_lanes, global_lanes)`` override;
            the default spends ``k - 1`` per local ring and
            ``min(n, max(2, k))`` on the global ring.
        seed: root seed; member rings derive distinct deterministic
            seeds from it (grid idiom: ``seed*1009 + L`` per local ring,
            ``seed*2003`` for the global ring).
        config: optional :class:`RMBConfig` template supplying every
            non-geometry knob (periods, retry policy, check level, ...);
            nodes and lanes are overridden per member ring.
        check_invariants: arm each member ring's invariant monitor.
        probe_period: sampling period for fabric-level *and* per-ring
            utilization / live-bus probes; ``None`` disables both.
        obs: optional observability bundle; member metrics are labelled
            ``ring=localL`` / ``ring=global`` plus ``rmb_ring{name=...}``
            membership gauges.
    """

    def __init__(
        self,
        locals: int = 4,
        nodes_per_local: int = 8,
        lanes: int = 4,
        lanes_split: Optional[Tuple[int, int]] = None,
        seed: int = 0,
        config: Optional[RMBConfig] = None,
        check_invariants: bool = True,
        probe_period: Optional[float] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        if lanes_split is None:
            if lanes < 2:
                raise ProtocolError(
                    "hier RMB needs at least 2 lanes to split between the "
                    "local and global tiers (or pass lanes_split)"
                )
            lanes_split = (max(1, lanes - 1),
                           min(nodes_per_local, max(2, lanes)))
        local_lanes, global_lanes = lanes_split
        if local_lanes < 1 or global_lanes < 1:
            raise ProtocolError(
                f"lanes_split must give every tier at least one lane, "
                f"got {lanes_split}"
            )
        super().__init__(
            HierRouteMap(locals, nodes_per_local),
            name=f"hier {locals}x{nodes_per_local}",
            probe_period=probe_period,
        )
        template = config if config is not None else RMBConfig(
            nodes=nodes_per_local, lanes=lanes)
        self.locals = locals
        self.nodes_per_local = nodes_per_local
        self.nodes = locals * nodes_per_local
        self.lanes = lanes
        self.local_lanes = local_lanes
        self.global_lanes = global_lanes
        self.local_config = template.with_overrides(
            nodes=nodes_per_local, lanes=local_lanes)
        self.global_config = template.with_overrides(
            nodes=locals, lanes=global_lanes)
        for local in range(locals):
            name = local_ring_name(local)
            self.add_ring(RMBRing(
                self.local_config, seed=seed * 1009 + local, sim=self.sim,
                name=name, check_invariants=check_invariants,
                probe_period=probe_period, obs=obs,
                obs_ring_label=name if obs is not None else None,
            ))
        self.add_ring(RMBRing(
            self.global_config, seed=seed * 2003, sim=self.sim,
            name=GLOBAL_RING, check_invariants=check_invariants,
            probe_period=probe_period, obs=obs,
            obs_ring_label=GLOBAL_RING if obs is not None else None,
        ))
        self._wire_obs(obs)
        self._arm_probes()

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    def address(self, local: int, index: int) -> int:
        """Fabric address of local ring ``local``, local index ``index``."""
        if not 0 <= local < self.locals:
            raise ProtocolError(
                f"local ring {local} out of range (0..{self.locals - 1})")
        if not 0 <= index < self.nodes_per_local:
            raise ProtocolError(
                f"local index {index} out of range "
                f"(0..{self.nodes_per_local - 1})")
        return local * self.nodes_per_local + index

    def split(self, node: int) -> Tuple[int, int]:
        """``(local ring, local index)`` of fabric address ``node``."""
        route_map = self.route_map
        assert isinstance(route_map, HierRouteMap)
        return route_map.split(node)

    def bridge(self, local: int) -> int:
        """Fabric address of local ring ``local``'s bridge node."""
        return self.address(local, 0)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def wire_budget(self) -> Dict[str, int]:
        """Segment accounting against the flat-ring budget.

        A flat RMB ring covering the same ``m * n`` nodes with the
        declared ``lanes`` budget owns ``m * n * lanes`` segments; the
        hierarchy must not spend more (``within_budget``), so arena
        comparisons against ``rmb(m*n, k)`` are honest.
        """
        local_segments = self.locals * self.nodes_per_local * self.local_lanes
        global_segments = self.locals * self.global_lanes
        budget = self.locals * self.nodes_per_local * self.lanes
        total = local_segments + global_segments
        return {
            "budget_segments": budget,
            "local_segments": local_segments,
            "global_segments": global_segments,
            "total_segments": total,
            "within_budget": int(total <= budget),
        }

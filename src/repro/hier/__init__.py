"""The multi-ring composite layer: ring fabrics, route maps, hierarchies.

A :class:`RingFabric` composes named :class:`~repro.core.network.RMBRing`
members on one shared simulator behind the single-ring workload surface
(``submit`` / ``run`` / ``drain`` / ``stats``), driving multi-leg
journeys through a declarative :class:`RouteMap` with store-and-forward
re-injection at ring boundaries.  :class:`TwoRingRMB` (the paper's
Section 2.1 two-ring variant) and :class:`HierRMB` (local rings bridged
by a global ring) are both thin route-map instances of it.
"""

from repro.hier.fabric import (
    FabricRecord,
    Hop,
    HopRecord,
    RingFabric,
    RouteMap,
)
from repro.hier.hier import GLOBAL_RING, HierRMB, HierRouteMap, local_ring_name
from repro.hier.tworing import MirrorRouteMap, TwoRingRMB

__all__ = [
    "FabricRecord",
    "GLOBAL_RING",
    "HierRMB",
    "HierRouteMap",
    "Hop",
    "HopRecord",
    "MirrorRouteMap",
    "RingFabric",
    "RouteMap",
    "TwoRingRMB",
    "local_ring_name",
]

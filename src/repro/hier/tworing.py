"""The two-ring RMB as a :class:`RingFabric` route-map instance.

Realises the paper's Section 2.1 remark that "one may like to organise
the communication as two parallel unidirectional rings": a clockwise and
a counter-clockwise ring on one shared simulator, each message routed
the short way round.  The counter-clockwise ring is an ordinary
:class:`~repro.core.network.RMBRing` over mirrored node indices
(``i -> (N - i) % N``), which turns counter-clockwise physical travel
into clockwise logical travel.

Everything composite — submission routing, draining, census, stats —
comes from :class:`RingFabric`; this module only contributes the mirror
route map and the lane split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.config import RMBConfig
from repro.core.flits import Message
from repro.core.network import RMBRing
from repro.errors import ProtocolError
from repro.hier.fabric import Hop, RingFabric, RouteMap

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.wiring import Observability


@dataclass(frozen=True)
class MirrorRouteMap(RouteMap):
    """Shorter-span ring choice over a clockwise/mirrored-ring pair.

    A message whose clockwise span is at most half the ring goes on the
    ``cw`` ring unchanged (ties go clockwise, matching the original
    two-ring implementation); otherwise it goes on the ``ccw`` ring with
    every endpoint mirrored.
    """

    nodes: int

    def mirror(self, node: int) -> int:
        return (self.nodes - node) % self.nodes

    def plan(self, message: Message) -> Tuple[Hop, ...]:
        clockwise_span = (message.destination - message.source) % self.nodes
        if clockwise_span <= self.nodes - clockwise_span:
            return (Hop(
                ring="cw",
                source=message.source,
                destination=message.destination,
                extra_destinations=message.extra_destinations,
            ),)
        return (Hop(
            ring="ccw",
            source=self.mirror(message.source),
            destination=self.mirror(message.destination),
            extra_destinations=tuple(
                self.mirror(tap) for tap in message.extra_destinations
            ),
        ),)


class TwoRingRMB(RingFabric):
    """Two unidirectional RMB rings sharing one simulator.

    Messages are routed on the ring that gives the shorter span; ties go
    clockwise.  ``config.lanes`` is split evenly between the directions
    unless ``lanes_per_direction`` is given.
    """

    def __init__(
        self,
        config: RMBConfig,
        lanes_per_direction: Optional[int] = None,
        seed: int = 0,
        check_invariants: bool = True,
        probe_period: Optional[float] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        lanes = lanes_per_direction
        if lanes is None:
            if config.lanes < 2:
                raise ProtocolError(
                    "two-ring RMB needs at least 2 lanes to split"
                )
            lanes = config.lanes // 2
        super().__init__(
            MirrorRouteMap(config.nodes),
            name="two-ring RMB",
            probe_period=probe_period,
        )
        ring_config = config.with_overrides(lanes=lanes)
        self.config = ring_config
        self.nodes = config.nodes
        self.clockwise = self.add_ring(RMBRing(
            ring_config, seed=seed, sim=self.sim, name="cw",
            check_invariants=check_invariants, probe_period=probe_period,
            obs=obs, obs_ring_label="cw" if obs is not None else None,
        ))
        self.counterclockwise = self.add_ring(RMBRing(
            ring_config, seed=seed + 1, sim=self.sim, name="ccw",
            check_invariants=check_invariants, probe_period=probe_period,
            obs=obs, obs_ring_label="ccw" if obs is not None else None,
        ))
        self._wire_obs(obs)
        self._arm_probes()

    def _mirror(self, node: int) -> int:
        route_map = self.route_map
        assert isinstance(route_map, MirrorRouteMap)
        return route_map.mirror(node)

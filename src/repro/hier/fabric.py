"""The multi-ring composite layer: named rings, route maps, hop trails.

A :class:`RingFabric` owns one shared :class:`~repro.sim.kernel.Simulator`
and a set of named :class:`~repro.core.network.RMBRing` members.  Messages
are submitted to the *fabric*; a declarative :class:`RouteMap` turns each
message into a chain of :class:`Hop` legs (one per member ring), and the
fabric drives the chain with store-and-forward re-injection: when a leg
completes on its ring (the routing engine's ``on_complete`` hook), the
next leg is submitted immediately, on the same simulator, at the current
simulation time.  The original ``message_id`` is preserved on every leg,
so a journey is one id with a :class:`HopRecord` trail across rings.

The fabric unifies the composite-network surface that used to be
re-implemented per topology (``TwoRingRMB`` before this layer existed):
``submit`` / ``pending`` / ``drain`` / ``lifecycle_census`` / ``stats``
all behave exactly like a single :class:`RMBRing`, with per-ring
breakdowns (:meth:`RingFabric.stats_by_ring`,
:meth:`RingFabric.census_by_ring`) layered on top.

Two statistics views coexist:

* :meth:`RingFabric.stats` — *leg level*: every per-ring record counts,
  matching what each member ring physically did (and matching the
  single-ring meaning of utilization / live buses / incidents).
* :meth:`RingFabric.journey_run_stats` — *message level*: one row per
  submitted journey, with end-to-end latency measured from the original
  ``created_at`` to the final leg's completion.

Route maps and the fabric itself follow the checkpoint rules from
``repro.supervision``: no closures, plain picklable instances, bound
methods only on picklable owners.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.flits import Message, MessageRecord
from repro.core.routing import format_census
from repro.core.stats import RunStats
from repro.errors import ProtocolError
from repro.sim.kernel import Simulator, every
from repro.sim.monitor import RateMeter, TimeSeries
from repro.supervision.incidents import IncidentLog

if TYPE_CHECKING:  # pragma: no cover - annotations only (core imports us)
    from repro.core.network import RMBRing
    from repro.obs.wiring import Observability


@dataclass(frozen=True)
class Hop:
    """One leg of a journey: which ring, and the endpoints *on that ring*.

    Endpoints are in the member ring's own coordinate system (the route
    map owns the translation from fabric addresses — e.g. mirroring for
    a counter-rotating ring, or ``global_node = local // n`` for a
    hierarchy).  The fabric materialises the actual per-leg
    :class:`~repro.core.flits.Message` at injection time, so a hop stays
    a pure description.
    """

    ring: str
    source: int
    destination: int
    extra_destinations: Tuple[int, ...] = ()


@dataclass
class HopRecord:
    """One executed (or in-flight) leg of a journey.

    Attributes:
        ring: member ring the leg ran on.
        message: the per-leg message actually injected (ring-local
            endpoints, original ``message_id``).
        submitted_at: simulation time the leg was submitted.
        record: the member ring's live :class:`MessageRecord` for the leg.
    """

    ring: str
    message: Message
    submitted_at: float
    record: MessageRecord

    @property
    def completed_at(self) -> Optional[float]:
        return self.record.completed_at


@dataclass
class FabricRecord:
    """A journey: the original message plus its planned and executed hops.

    ``trail`` grows as legs are injected; the journey is ``finished``
    once the final leg completes.  End-to-end latency is measured from
    the *original* message's ``created_at`` (intermediate legs carry
    re-injection timestamps of their own).
    """

    message: Message
    plan: Tuple[Hop, ...]
    trail: List[HopRecord] = field(default_factory=list)
    next_hop: int = 0
    completed_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    @property
    def hops(self) -> int:
        """Planned chain length."""
        return len(self.plan)

    def rings_visited(self) -> Tuple[str, ...]:
        """Names of the rings legs have been injected on, in order."""
        return tuple(hop.ring for hop in self.trail)

    def latency(self) -> Optional[float]:
        """End-to-end request-to-completion time (``None`` until done)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.message.created_at

    def setup_time(self) -> Optional[float]:
        """First leg's circuit-establishment time (``None`` until known)."""
        if not self.trail:
            return None
        return self.trail[0].record.setup_time()


class RouteMap(ABC):
    """Declarative message → ring-chain mapping.

    Implementations are pure: :meth:`plan` must depend only on the
    message (same message, same plan), so journeys replay bit-exactly
    from checkpoints and the Hypothesis determinism suite can pin the
    hop trail.
    """

    @abstractmethod
    def plan(self, message: Message) -> Tuple[Hop, ...]:
        """The chain of hops that realises ``message``, in travel order.

        Raises:
            ProtocolError: if the message cannot be routed (bad address,
                unsupported multicast shape, ...).
        """


class RingFabric:
    """A composite network of named RMB rings on one shared simulator.

    Subclasses (``TwoRingRMB``, :class:`~repro.hier.hier.HierRMB`)
    construct their member rings with ``sim=self.sim`` and register them
    via :meth:`add_ring`; registration order fixes the per-ring order of
    every aggregate (stats record order, census rendering, checkpoint
    manifests), so keep it deterministic.

    Args:
        route_map: the fabric's message → hop-chain mapping.
        name: label for drain diagnostics and probe series.
        probe_period: sampling period for the *fabric-level* utilization
            / live-bus probes and the delivered-flits rate meter;
            ``None`` disables them (member rings may still run their
            own probes).
    """

    def __init__(
        self,
        route_map: RouteMap,
        name: str = "fabric",
        probe_period: Optional[float] = None,
    ) -> None:
        self.name = name
        self.route_map = route_map
        self.sim = Simulator()
        self.rings: Dict[str, "RMBRing"] = {}
        self.journeys: Dict[int, FabricRecord] = {}
        self._ring_of_message: Dict[int, "RMBRing"] = {}
        self.utilization = TimeSeries(f"{name}.utilization")
        self.live_buses = TimeSeries(f"{name}.live_buses")
        self.throughput_meter: Optional[RateMeter] = None
        self._probe_period = probe_period
        self.obs: Optional["Observability"] = None

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def add_ring(self, ring: "RMBRing") -> "RMBRing":
        """Register a member ring and take over its completion hook.

        The ring must have been built on the fabric's simulator and its
        ``name`` must be unique within the fabric.
        """
        if ring.sim is not self.sim:
            raise ProtocolError(
                f"ring {ring.name!r} was not built on the fabric simulator"
            )
        if ring.name in self.rings:
            raise ProtocolError(
                f"duplicate ring name {ring.name!r} in fabric {self.name!r}"
            )
        if ring.routing.on_complete is not None:
            raise ProtocolError(
                f"ring {ring.name!r} already has an on_complete hook"
            )
        ring.routing.on_complete = self._leg_completed
        self.rings[ring.name] = ring
        return ring

    def _arm_probes(self) -> None:
        """Start the fabric-level probes (call once all rings exist)."""
        if self._probe_period is None:
            return
        every(self.sim, self._probe_period, self._sample_probes,
              label=f"{self.name}.probes")
        self.throughput_meter = RateMeter(
            self.sim, self._probe_period, self._flits_delivered_total,
            name=f"{self.name}.throughput",
        )

    def _wire_obs(self, obs: Optional["Observability"]) -> None:
        """Attach an observability bundle at the fabric level.

        Member rings register their own *ring-labelled* state collectors
        (``obs_ring_label``); the fabric contributes the single shared
        kernel collector, since all members run on one simulator.
        """
        if obs is None:
            return
        from repro.obs.wiring import KernelCollector
        self.obs = obs
        obs.registry.register_collector(KernelCollector(self.sim, obs.registry))

    def ring(self, name: str) -> "RMBRing":
        """The member ring called ``name``."""
        try:
            return self.rings[name]
        except KeyError:
            raise ProtocolError(
                f"fabric {self.name!r} has no ring {name!r} "
                f"(members: {', '.join(self.rings) or 'none'})"
            ) from None

    def member_names(self) -> Tuple[str, ...]:
        """Member ring names in registration order."""
        return tuple(self.rings)

    # ------------------------------------------------------------------
    # Workload interface (mirrors RMBRing)
    # ------------------------------------------------------------------
    def submit(self, message: Message) -> MessageRecord:
        """Plan the journey and inject its first leg; return that record.

        The returned record is the *first leg's* ring-level record; the
        whole journey is tracked in :attr:`journeys` under the message id.
        """
        if message.message_id in self.journeys:
            raise ProtocolError(
                f"duplicate fabric message id {message.message_id}"
            )
        plan = self.route_map.plan(message)
        if not plan:
            raise ProtocolError(
                f"route map produced an empty chain for message "
                f"{message.message_id}"
            )
        seen: set[str] = set()
        for hop in plan:
            if hop.ring not in self.rings:
                raise ProtocolError(
                    f"route map names unknown ring {hop.ring!r} "
                    f"(members: {', '.join(self.rings)})"
                )
            if hop.ring in seen:
                raise ProtocolError(
                    f"route map visits ring {hop.ring!r} twice for message "
                    f"{message.message_id}; a chain may use each ring once"
                )
            seen.add(hop.ring)
        journey = FabricRecord(message=message, plan=plan)
        self.journeys[message.message_id] = journey
        return self._inject_next_leg(journey)

    def submit_all(self, messages: Iterable[Message]) -> list[MessageRecord]:
        """Queue a batch of messages."""
        return [self.submit(message) for message in messages]

    def _inject_next_leg(self, journey: FabricRecord) -> MessageRecord:
        hop = journey.plan[journey.next_hop]
        ring = self.rings[hop.ring]
        original = journey.message
        # The first leg keeps the original creation time (end-to-end
        # latency starts there); re-injected legs are created "now" at
        # the bridge, which is what store-and-forward means.
        created = (original.created_at if journey.next_hop == 0
                   else self.sim.now)
        leg = Message(
            message_id=original.message_id,
            source=hop.source,
            destination=hop.destination,
            data_flits=original.data_flits,
            created_at=created,
            extra_destinations=hop.extra_destinations,
        )
        record = ring.submit(leg)
        journey.trail.append(HopRecord(
            ring=hop.ring, message=leg,
            submitted_at=self.sim.now, record=record,
        ))
        journey.next_hop += 1
        self._ring_of_message[original.message_id] = ring
        return record

    def _leg_completed(self, record: MessageRecord) -> None:
        """Routing-engine ``on_complete`` hook: chain or finish a journey.

        Runs synchronously inside the completing ring's event, exactly
        like the grid composition layer: the next leg is submitted at the
        current simulation time (store-and-forward at the bridge).
        Records for traffic submitted directly to a member ring (not
        through the fabric) are ignored.
        """
        journey = self.journeys.get(record.message.message_id)
        if journey is None or not journey.trail:
            return
        if journey.trail[-1].record is not record:
            return
        if journey.next_hop < len(journey.plan):
            self._inject_next_leg(journey)
        else:
            journey.completed_at = record.completed_at

    def run(self, ticks: float) -> None:
        """Advance the shared simulation by ``ticks``."""
        self.sim.run_ticks(ticks)

    def pending(self) -> int:
        """Requests outstanding across every member ring."""
        return sum(ring.routing.pending() for ring in self.rings.values())

    def _drain_chunk(self) -> float:
        return max(
            max(ring.config.cycle_period, ring.config.flit_period)
            for ring in self.rings.values()
        ) * 16

    def drain(self, max_ticks: float = 1_000_000.0) -> float:
        """Run until all submitted traffic completes; return elapsed ticks.

        Raises:
            ProtocolError: if traffic fails to drain within ``max_ticks``;
                the message carries every member ring's lifecycle census.
        """
        if not self.rings:
            raise ProtocolError(f"fabric {self.name!r} has no member rings")
        start = self.sim.now
        chunk = self._drain_chunk()
        while self.pending() > 0:
            if self.sim.now - start > max_ticks:
                raise ProtocolError(
                    f"{self.name} failed to drain within {max_ticks} ticks "
                    f"({self._census_clause()})"
                )
            # Absolute chunk boundaries (not now + chunk): a run resumed
            # from a checkpoint stops at the same final time as the
            # uninterrupted run, keeping checkpoint/restore bit-exact.
            self.sim.run(until=(self.sim.now // chunk + 1) * chunk)
        return self.sim.now - start

    def _census_clause(self) -> str:
        return "; ".join(
            f"{name} {format_census(ring.routing.lifecycle_census())}"
            for name, ring in self.rings.items()
        )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def _sample_probes(self) -> None:
        occupied = 0.0
        segments = 0
        live = 0
        for ring in self.rings.values():
            count = ring.config.nodes * ring.config.lanes
            occupied += ring.grid.utilization() * count
            segments += count
            live += ring.routing.live_bus_count()
        self.utilization.record(
            self.sim.now, occupied / segments if segments else 0.0)
        self.live_buses.record(self.sim.now, float(live))

    def _flits_delivered_total(self) -> float:
        return float(sum(ring.routing.flits_delivered
                         for ring in self.rings.values()))

    def lifecycle_census(self) -> Dict[str, int]:
        """Non-terminal lifecycle states summed across member rings."""
        census: Dict[str, int] = {}
        for ring in self.rings.values():
            for state, count in ring.routing.lifecycle_census().items():
                census[state] = census.get(state, 0) + count
        return census

    def census_by_ring(self) -> Dict[str, Dict[str, int]]:
        """Each member ring's lifecycle census, keyed by ring name."""
        return {name: ring.routing.lifecycle_census()
                for name, ring in self.rings.items()}

    def _merged_incidents(self) -> Optional[IncidentLog]:
        logs = [ring.watchdog.incidents for ring in self.rings.values()
                if ring.watchdog is not None]
        if not logs:
            return None
        merged = IncidentLog()
        for incident in sorted(
            (entry for log in logs for entry in log),
            key=lambda incident: incident.time,
        ):
            merged.record(incident)
        return merged

    def _merged_admission(self) -> Optional[Dict[str, float]]:
        summaries = [ring.routing.admission.summary()
                     for ring in self.rings.values()
                     if ring.routing.admission.enabled]
        if not summaries:
            return None
        merged: Dict[str, float] = {}
        for summary in summaries:
            for key, value in summary.items():
                merged[key] = merged.get(key, 0.0) + value
        return merged

    def stats(self) -> RunStats:
        """Leg-level statistics with the full single-ring surface.

        Records are aggregated per member ring in registration order
        (stable accumulation order keeps fixed-seed summaries
        bit-identical); utilization / live buses / throughput come from
        the fabric-level probes, incidents and admission summaries are
        merged across rings.
        """
        records: list[MessageRecord] = []
        for ring in self.rings.values():
            records.extend(ring.routing.records.values())
        return RunStats.from_records(
            records,
            duration=self.sim.now,
            utilization=self.utilization,
            live_buses=self.live_buses,
            throughput=(self.throughput_meter.series
                        if self.throughput_meter is not None else None),
            incidents=self._merged_incidents(),
            admission=self._merged_admission(),
            forced_teardowns=sum(ring.routing.forced_teardowns
                                 for ring in self.rings.values()),
        )

    def stats_by_ring(self) -> Dict[str, RunStats]:
        """Each member ring's own :meth:`RMBRing.stats`, keyed by name."""
        return {name: ring.stats() for name, ring in self.rings.items()}

    def journey_run_stats(self) -> RunStats:
        """Message-level statistics: one row per submitted journey.

        Latency is end to end (original ``created_at`` to the final
        leg's completion); nacks / retries / stalls / fault counters are
        summed over the journey's legs.  Probe series and merged
        incident / admission summaries are shared with :meth:`stats`.
        """
        stats = RunStats(
            duration=self.sim.now,
            utilization=self.utilization,
            live_buses=self.live_buses,
            throughput=(self.throughput_meter.series
                        if self.throughput_meter is not None else None),
            incidents=self._merged_incidents(),
            admission=self._merged_admission(),
            forced_teardowns=sum(ring.routing.forced_teardowns
                                 for ring in self.rings.values()),
        )
        for journey in self.journeys.values():
            stats.offered += 1
            legs = [hop.record for hop in journey.trail]
            if legs and legs[0].shed:
                stats.shed += 1
                continue
            stats.nacks += sum(leg.nacks for leg in legs)
            stats.retries += sum(leg.retries for leg in legs)
            stats.fault_kills += sum(leg.fault_kills for leg in legs)
            stats.fault_nacks += sum(leg.fault_nacks for leg in legs)
            stats.deferrals += sum(leg.deferred for leg in legs)
            stats.stalls.add(sum(leg.head_stall_ticks for leg in legs))
            if any(leg.abandoned for leg in legs):
                stats.abandoned += 1
            if journey.finished:
                stats.completed += 1
                stats.flits_delivered += journey.message.total_flits
                latency = journey.latency()
                if latency is not None:
                    stats.latency.add(latency)
                    stats._latencies.append(latency)
                setup = journey.setup_time()
                if setup is not None:
                    stats.setup.add(setup)
        return stats

    def check_now(self) -> None:
        """Run every member ring's invariant suite immediately."""
        for ring in self.rings.values():
            ring.check_now()

    def cycle_count(self) -> int:
        """Max compaction cycle index across member rings."""
        return max(ring.cycle_count() for ring in self.rings.values())

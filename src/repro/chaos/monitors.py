"""Continuously-evaluated soak invariants: catch the lie, keep the run.

The core :class:`~repro.core.invariants.InvariantMonitor` raises on the
first violation — right for tests, wrong for a soak, where the point is
to keep running and report *everything* that went wrong.  The monitors
here therefore record :class:`Violation` entries instead of raising, and
they watch end-to-end properties the structural checks cannot see:

* :class:`ConservationMonitor` — delivery conservation: every message
  ever offered is delivered, abandoned, shed, or still verifiably
  in flight.  ``completed + abandoned + shed + pending == offered``,
  continuously, not just at drain time.
* :class:`StuckBusMonitor` — no live virtual bus may sit in the same
  protocol state without progress beyond a window (the watchdog's
  progress-signature idea, promoted to a hard invariant).
* :class:`SkewMonitor` — Lemma 1 under faults: neighbouring cycle
  counters differ by at most one, skipping INCs the fault layer has
  parked (their controllers legitimately freeze mid-handshake).

:class:`MonitorSuite` bundles them behind one ``check()`` and rides a
:class:`~repro.sim.kernel.Periodic` during soak runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.cycles import CycleController
    from repro.core.network import RMBRing
    from repro.core.routing import RoutingEngine


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed during a soak."""

    time: float
    monitor: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:>10.1f}] {self.monitor}: {self.detail}"


class ConservationMonitor:
    """Delivery conservation over everything ever submitted.

    Offered counts message records; the terminal buckets come from the
    same records (``finished`` / ``abandoned`` / ``shed``); pending is the
    engine's own census of live work.  Any gap means a message fell out
    of the lifecycle FSM without reaching a terminal state — exactly the
    class of bug a fault/recovery interaction would introduce.
    """

    name = "conservation"

    def __init__(self, routing: "RoutingEngine") -> None:
        self._routing = routing

    def check(self, now: float) -> Optional[Violation]:
        routing = self._routing
        offered = len(routing.records)
        completed = abandoned = shed = 0
        for record in routing.records.values():
            if record.finished:
                completed += 1
            elif record.abandoned:
                abandoned += 1
            elif record.shed:
                shed += 1
        pending = routing.pending()
        if completed + abandoned + shed + pending != offered:
            return Violation(
                time=now, monitor=self.name,
                detail=(f"offered={offered} != completed={completed} "
                        f"+ abandoned={abandoned} + shed={shed} "
                        f"+ pending={pending}"),
            )
        return None


class StuckBusMonitor:
    """No live bus may show zero progress for longer than ``window``.

    Progress is a state signature — protocol phase, hops drawn, signal
    position, release watermark — the same notion the watchdog uses for
    its ``stalled_bus`` incidents.  The monitor tolerates buses the
    recovery manager is about to evacuate (that *is* the remedy); a bus
    still frozen past the window is a liveness violation.
    """

    name = "stuck_bus"

    def __init__(self, routing: "RoutingEngine", window: float) -> None:
        if window <= 0:
            raise ValueError(f"stuck-bus window must be positive: {window}")
        self._routing = routing
        self.window = window
        #: bus_id -> (signature, first seen with that signature)
        self._marks: Dict[int, Tuple[tuple, float]] = {}

    def check(self, now: float) -> Optional[Violation]:
        live = set()
        worst: Optional[Tuple[float, int]] = None
        for bus in self._routing.buses.values():
            live.add(bus.bus_id)
            signature = (bus.phase, len(bus.hops), bus.signal_position,
                         bus.released_from)
            mark = self._marks.get(bus.bus_id)
            if mark is None or mark[0] != signature:
                self._marks[bus.bus_id] = (signature, now)
                continue
            age = now - mark[1]
            if age >= self.window and \
                    (worst is None or age > worst[0]):
                worst = (age, bus.bus_id)
        for bus_id in list(self._marks):
            if bus_id not in live:
                del self._marks[bus_id]
        if worst is not None:
            age, bus_id = worst
            bus = self._routing.buses[bus_id]
            return Violation(
                time=now, monitor=self.name,
                detail=(f"bus#{bus_id} frozen for {age:g} ticks in phase "
                        f"{bus.phase.value} (hops={len(bus.hops)})"),
            )
        return None


class SkewMonitor:
    """Lemma 1 under faults: neighbour cycle skew <= 1, dropped INCs aside.

    An INC parked by the fault layer stops answering the odd/even
    handshake, so runs *through* it are measured between its live
    neighbours instead — the lemma still binds every pair of INCs that
    are actually exchanging handshakes.
    """

    name = "lemma1_skew"

    def __init__(self, controllers: Sequence["CycleController"],
                 dropped: Optional[set] = None) -> None:
        self._controllers = controllers
        # Shared with the compaction engine when given: membership is
        # read at check time, so drops/restores are picked up live.
        self._dropped = dropped if dropped is not None else set()

    def check(self, now: float) -> Optional[Violation]:
        alive = [controller for controller in self._controllers
                 if controller.index not in self._dropped]
        if len(alive) < 2:
            return None
        for position, left in enumerate(alive):
            right = alive[(position + 1) % len(alive)]
            skew = abs(left.cycle - right.cycle)
            if skew > 1:
                return Violation(
                    time=now, monitor=self.name,
                    detail=(f"INC {left.index} at cycle {left.cycle}, "
                            f"INC {right.index} at cycle {right.cycle} "
                            f"(skew {skew})"),
                )
        return None


class MonitorSuite:
    """All soak monitors behind one periodic ``check()``.

    Violations accumulate in :attr:`violations`; the suite never raises,
    so a soak runs to completion and reports the full damage.  The
    structural invariant checks (grid/bus agreement, no dead occupancy,
    lane monotonicity) stay with the ring's own
    :class:`~repro.core.invariants.InvariantMonitor` — soak runs arm both.
    """

    def __init__(self, ring: "RMBRing",
                 stuck_window: float = 800.0) -> None:
        self._ring = ring
        self.monitors: List = [
            ConservationMonitor(ring.routing),
            StuckBusMonitor(ring.routing, window=stuck_window),
        ]
        if ring.controllers is not None:
            dropped = (ring.compaction.dropped_incs
                       if ring.compaction is not None else None)
            self.monitors.append(SkewMonitor(ring.controllers,
                                             dropped=dropped))
        self.violations: List[Violation] = []
        self.checks_run = 0

    def check(self) -> None:
        now = self._ring.sim.now
        self.checks_run += 1
        for monitor in self.monitors:
            violation = monitor.check(now)
            if violation is not None:
                self.violations.append(violation)

    def check_structural(self) -> None:
        """Run the ring's structural invariants, folding raises into
        violations (drain-time sweep for soak reports)."""
        now = self._ring.sim.now
        try:
            self._ring.check_now()
        except InvariantViolation as exc:
            self.violations.append(
                Violation(time=now, monitor="structural", detail=str(exc)))

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.clean:
            return (f"all invariants held "
                    f"({self.checks_run} sweeps, 0 violations)")
        lines = [f"{len(self.violations)} violation(s) "
                 f"in {self.checks_run} sweeps:"]
        lines.extend(str(violation) for violation in self.violations)
        return "\n".join(lines)

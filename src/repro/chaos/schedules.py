"""Seeded chaos-schedule generators: adversarial fault plans as data.

Each generator returns an ordinary
:class:`~repro.faults.plan.FaultPlan` — chaos runs use the production
fault layer unchanged, so every schedule is replayable (plan JSON plus
seed reproduces the run bit-for-bit) and every outage goes through the
real DYING → DEAD grace machinery.

Four archetypes cover the failure shapes the recovery loop must survive:

* :func:`storm` — a burst of random segment outages spread over a window,
  each later repaired (the classic correlated-failure storm);
* :func:`rolling_wave` — one lane's outage sweeps INC by INC around the
  ring, chasing traffic as compaction migrates it;
* :func:`flapping` — a few segments fail → repair → fail repeatedly with
  periods near the DYING → DEAD grace window, the circuit breaker's
  reason to exist;
* :func:`inc_outage` — several whole INCs drop simultaneously and return
  together (a correlated switch-rail outage, fault model F5).

:func:`parse_chaos_spec` gives them a compact, composable CLI grammar.
"""

from __future__ import annotations

from typing import List

from repro.errors import FaultError
from repro.faults.plan import DEFAULT_GRACE, FaultEvent, FaultKind, FaultPlan
from repro.sim.rng import RandomStream

__all__ = [
    "storm",
    "rolling_wave",
    "flapping",
    "inc_outage",
    "parse_chaos_spec",
]


def storm(
    nodes: int,
    lanes: int,
    rng: RandomStream,
    fraction: float = 0.3,
    at: float = 200.0,
    spread: float = 400.0,
    grace: float = DEFAULT_GRACE,
    repair_after: float = 300.0,
) -> FaultPlan:
    """A correlated outage burst: ``fraction`` of all lane-segments fail
    at seeded-random instants in ``[at, at + spread]``; each is repaired
    ``repair_after`` ticks after it dies.
    """
    return FaultPlan.random(
        nodes, lanes, fraction=fraction, at=at, rng=rng,
        grace=grace, spread=spread, repair_after=repair_after,
    )


def rolling_wave(
    nodes: int,
    lanes: int,
    rng: RandomStream,
    lane: int = 0,
    at: float = 100.0,
    step: float = 32.0,
    grace: float = DEFAULT_GRACE,
    width: int = 2,
) -> FaultPlan:
    """An outage wave sweeping one lane around the ring.

    Segment ``i`` of ``lane`` fails at ``at + i * step`` and is repaired
    once the wave front is ``width`` segments past it — so at any instant
    roughly ``width`` consecutive segments are out, and the failure
    region *moves*, chasing buses that evacuation just parked.
    """
    if not 0 <= lane < lanes:
        raise FaultError(f"wave lane {lane} outside 0..{lanes - 1}")
    if step <= 0:
        raise FaultError(f"wave step must be positive, got {step}")
    if width < 1:
        raise FaultError(f"wave width must be >= 1, got {width}")
    events: List[FaultEvent] = []
    for segment in range(nodes):
        fail_at = at + segment * step
        events.append(FaultEvent(
            time=fail_at, kind=FaultKind.SEGMENT,
            segment=segment, lane=lane, grace=grace,
        ))
        events.append(FaultEvent(
            time=fail_at + grace + width * step, kind=FaultKind.SEGMENT,
            action="repair", segment=segment, lane=lane,
        ))
    return FaultPlan(tuple(events))


def flapping(
    nodes: int,
    lanes: int,
    rng: RandomStream,
    targets: int = 2,
    flaps: int = 4,
    at: float = 100.0,
    period: float = 2 * DEFAULT_GRACE,
    grace: float = DEFAULT_GRACE,
) -> FaultPlan:
    """``targets`` seeded-random segments flap ``flaps`` times each.

    One flap is fail at ``t``, repair at ``t + period``; the next flap
    starts at ``t + 2 * period``.  With ``period`` near ``grace`` the
    repairs land both before and after the DYING → DEAD transition across
    the sequence, exercising the fault layer's epoch guard and giving the
    circuit breaker its canonical trip pattern.
    """
    if targets < 1:
        raise FaultError(f"flapping needs >= 1 target, got {targets}")
    if flaps < 1:
        raise FaultError(f"flapping needs >= 1 flap, got {flaps}")
    if period <= 0:
        raise FaultError(f"flap period must be positive, got {period}")
    population = [(segment, lane)
                  for segment in range(nodes) for lane in range(lanes)]
    chosen = rng.sample(population, min(targets, len(population)))
    events: List[FaultEvent] = []
    for segment, lane in chosen:
        start = at + rng.uniform(0.0, period)
        for flap in range(flaps):
            fail_at = start + flap * 2 * period
            events.append(FaultEvent(
                time=fail_at, kind=FaultKind.SEGMENT,
                segment=segment, lane=lane, grace=grace,
            ))
            events.append(FaultEvent(
                time=fail_at + period, kind=FaultKind.SEGMENT,
                action="repair", segment=segment, lane=lane,
            ))
    return FaultPlan(tuple(events))


def inc_outage(
    nodes: int,
    lanes: int,
    rng: RandomStream,
    count: int = 1,
    at: float = 200.0,
    hold: float = 400.0,
    grace: float = DEFAULT_GRACE,
) -> FaultPlan:
    """``count`` seeded-random INCs drop at ``at`` and all return together
    at ``at + hold`` — a correlated switch outage (fault model F5)."""
    if not 1 <= count <= nodes:
        raise FaultError(f"inc_outage count {count} outside 1..{nodes}")
    if hold <= 0:
        raise FaultError(f"inc_outage hold must be positive, got {hold}")
    chosen = rng.sample(list(range(nodes)), count)
    events: List[FaultEvent] = []
    for inc in chosen:
        events.append(FaultEvent(
            time=at, kind=FaultKind.INC, segment=inc, grace=grace,
        ))
        events.append(FaultEvent(
            time=at + hold, kind=FaultKind.INC, action="repair",
            segment=inc,
        ))
    return FaultPlan(tuple(events))


def parse_chaos_spec(spec: str, nodes: int, lanes: int,
                     seed: int = 0) -> FaultPlan:
    """Build a chaos plan from a compact spec string.

    Four entry forms, composable with ``;`` (events are merged into one
    plan); every entry may carry ``~GRACE`` to override the DYING → DEAD
    window:

    * ``storm:FRACTION@TIME+SPREAD[%REPAIR]`` — random ``FRACTION`` of
      segments fail across ``[TIME, TIME+SPREAD]``, each repaired
      ``REPAIR`` ticks after death (default 300);
    * ``wave:LANE@TIME+STEP`` — lane ``LANE``'s outage sweeps the ring,
      one segment per ``STEP`` ticks;
    * ``flap:TARGETSxFLAPS@TIME+PERIOD`` — flapping segments, one
      fail/repair pair per ``2*PERIOD`` ticks;
    * ``incs:COUNT@TIME+HOLD`` — ``COUNT`` INCs out together for ``HOLD``
      ticks.

    Example: ``"storm:0.3@200+400;flap:2x4@100+24"``.  The same spec,
    seed and geometry always produce the identical plan — chaos runs are
    replayable from their command line alone.
    """
    events: List[FaultEvent] = []
    rng = RandomStream(seed, name="chaos-spec")
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            head, _, when = chunk.partition("@")
            kind, _, args = head.partition(":")
            if not when:
                raise FaultError(f"missing @TIME in {chunk!r}")
            grace = DEFAULT_GRACE
            if "~" in when:
                when, _, grace_text = when.partition("~")
                grace = float(grace_text)
            time_text, _, span_text = when.partition("+")
            at = float(time_text)
            if kind == "storm":
                spread_text, _, repair_text = span_text.partition("%")
                plan = storm(
                    nodes, lanes, rng, fraction=float(args),
                    at=at,
                    spread=float(spread_text) if spread_text else 400.0,
                    grace=grace,
                    repair_after=float(repair_text) if repair_text else 300.0,
                )
            elif kind == "wave":
                plan = rolling_wave(
                    nodes, lanes, rng, lane=int(args), at=at,
                    step=float(span_text) if span_text else 32.0,
                    grace=grace,
                )
            elif kind == "flap":
                targets_text, _, flaps_text = args.partition("x")
                plan = flapping(
                    nodes, lanes, rng,
                    targets=int(targets_text),
                    flaps=int(flaps_text) if flaps_text else 4,
                    at=at,
                    period=float(span_text) if span_text
                    else 2 * DEFAULT_GRACE,
                    grace=grace,
                )
            elif kind == "incs":
                plan = inc_outage(
                    nodes, lanes, rng, count=int(args), at=at,
                    hold=float(span_text) if span_text else 400.0,
                    grace=grace,
                )
            else:
                raise FaultError(f"unknown chaos kind {kind!r}")
        except (ValueError, IndexError) as exc:
            raise FaultError(
                f"cannot parse chaos spec entry {chunk!r}: {exc}"
            ) from exc
        events.extend(plan.events)
    plan = FaultPlan(tuple(events))
    plan.validate(nodes, lanes)
    return plan

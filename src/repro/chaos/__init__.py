"""Chaos harness: seeded adversarial fault schedules plus soak runs.

The recovery loop (:mod:`repro.resilience`) is only trustworthy if it is
exercised against failure patterns nastier than the hand-written plans in
the test suite.  This package provides that pressure:

* :mod:`repro.chaos.schedules` — seeded generators for fault storms,
  rolling waves, flapping segments, and correlated INC outages, all
  emitting ordinary :class:`~repro.faults.plan.FaultPlan` objects (and a
  compact spec grammar for the CLI);
* :mod:`repro.chaos.monitors` — continuously-evaluated soak invariants
  (delivery conservation, no stuck buses, Lemma 1 skew) that *record*
  violations instead of raising, so a soak reports the full damage;
* :mod:`repro.chaos.soak` — the runner: traffic under chaos with the
  monitors armed, measuring MTTR and goodput retention against a healthy
  twin, with a deterministic result signature for replay checks.

Chaos runs use the production fault layer, routing, and recovery code
unchanged — nothing here is simulation-only scaffolding.
"""

from repro.chaos.monitors import (
    ConservationMonitor,
    MonitorSuite,
    SkewMonitor,
    StuckBusMonitor,
    Violation,
)
from repro.chaos.schedules import (
    flapping,
    inc_outage,
    parse_chaos_spec,
    rolling_wave,
    storm,
)
from repro.chaos.soak import SoakConfig, SoakResult, build_soak_ring, run_soak

__all__ = [
    "ConservationMonitor",
    "MonitorSuite",
    "SkewMonitor",
    "StuckBusMonitor",
    "Violation",
    "flapping",
    "inc_outage",
    "parse_chaos_spec",
    "rolling_wave",
    "storm",
    "SoakConfig",
    "SoakResult",
    "build_soak_ring",
    "run_soak",
]

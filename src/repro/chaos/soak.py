"""Soak runs: sustained traffic under a chaos schedule, fully accounted.

:func:`run_soak` is the chaos harness's engine: it builds a ring with a
seeded chaos plan armed, replays a seeded traffic schedule over a long
horizon while :class:`~repro.chaos.monitors.MonitorSuite` sweeps the
invariants, then drains and settles the books.  The result carries:

* the conservation ledger — every offered message ends the run delivered,
  abandoned, shed, or (drain failure) counted as pending;
* MTTR — mean ticks from a message's first fault hit to its eventual
  completion (the :class:`~repro.core.stats.RunStats` recovery tally);
* goodput retention — delivered throughput under chaos divided by the
  same seed/schedule run on a healthy twin ring;
* every invariant violation observed, and a deterministic
  :attr:`~SoakResult.signature` so two runs of the same config can be
  checked for bit-identical behaviour (replay determinism).

On violation the failing run can be captured with the ordinary
checkpoint machinery (``snapshot_path``) for offline dissection, and the
chaos plan itself serialises to JSON — a failing schedule replays from
its spec and seed alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.chaos.monitors import MonitorSuite, Violation
from repro.chaos.schedules import parse_chaos_spec
from repro.core.config import RMBConfig
from repro.core.network import RMBRing
from repro.errors import ConfigurationError, ProtocolError
from repro.faults.plan import FaultPlan
from repro.resilience.recovery import RecoveryConfig
from repro.sim.kernel import every
from repro.sim.rng import RandomStream
from repro.traffic import bernoulli_schedule, replay_on_ring

__all__ = ["SoakConfig", "SoakResult", "run_soak", "build_soak_ring"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario, fully determined by its fields.

    Attributes:
        nodes / lanes: ring geometry.
        ticks: traffic horizon — arrivals are generated over ``[0,
            ticks)``; the run then drains.
        rate: Bernoulli injection probability per node per tick.
        data_flits: message payload length.
        seed: root seed for the ring, the chaos plan, and the traffic.
        spec: chaos-schedule spec (see
            :func:`~repro.chaos.schedules.parse_chaos_spec`).
        recovery: recovery-manager config for the chaos ring; ``None``
            soaks with the loop open (faults only).
        asynchronous: run per-INC handshake cycle control instead of the
            global driver (arms the Lemma 1 skew monitor).
        monitor_period: ticks between invariant sweeps.
        stuck_window: no-progress window for the stuck-bus monitor.
        drain_ticks: post-horizon drain budget; running out is itself a
            recorded violation, not an exception.
    """

    nodes: int = 16
    lanes: int = 4
    ticks: float = 10_000.0
    rate: float = 0.02
    data_flits: int = 8
    seed: int = 0
    spec: str = "storm:0.3@500+2000"
    recovery: Optional[RecoveryConfig] = field(
        default_factory=RecoveryConfig)
    asynchronous: bool = False
    monitor_period: float = 50.0
    stuck_window: float = 800.0
    drain_ticks: float = 400_000.0

    def __post_init__(self) -> None:
        if self.ticks <= 0:
            raise ConfigurationError(
                f"soak ticks must be positive, got {self.ticks}")
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError(
                f"soak rate must be in (0, 1], got {self.rate}")
        if self.monitor_period <= 0:
            raise ConfigurationError("monitor_period must be positive")
        if self.drain_ticks <= 0:
            raise ConfigurationError("drain_ticks must be positive")


@dataclass
class SoakResult:
    """Everything a soak run measured, ready for reports and benches."""

    config: SoakConfig
    offered: int
    completed: int
    abandoned: int
    shed: int
    pending: int
    duration: float
    violations: List[Violation]
    mttr: Optional[float]
    rerouted: int
    goodput: float
    healthy_goodput: Optional[float]
    segments_cycled: int
    recovery_actions: Optional[dict]
    fault_stats: Optional[dict]
    signature: str

    @property
    def clean(self) -> bool:
        """True when every invariant held and every message is accounted."""
        return not self.violations and self.pending == 0

    @property
    def goodput_retention(self) -> Optional[float]:
        if self.healthy_goodput is None or self.healthy_goodput == 0.0:
            return None
        return self.goodput / self.healthy_goodput

    def summary(self) -> dict:
        data = {
            "offered": self.offered,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "shed": self.shed,
            "pending": self.pending,
            "duration": self.duration,
            "violations": len(self.violations),
            "mttr": self.mttr,
            "rerouted": self.rerouted,
            "goodput": self.goodput,
            "goodput_retention": self.goodput_retention,
            "segments_cycled": self.segments_cycled,
            "signature": self.signature,
        }
        if self.recovery_actions is not None:
            data["recovery"] = dict(self.recovery_actions)
        if self.fault_stats is not None:
            data["faults"] = dict(self.fault_stats)
        return data

    def report(self) -> str:
        lines = [
            f"soak: {self.offered} offered over {self.config.ticks:g} "
            f"ticks (N={self.config.nodes}, k={self.config.lanes}, "
            f"spec {self.config.spec!r})",
            f"  accounted: {self.completed} completed, "
            f"{self.abandoned} abandoned, {self.shed} shed, "
            f"{self.pending} pending",
            f"  duration {self.duration:g} ticks, goodput "
            f"{self.goodput:.4f} msg/tick"
            + (f" (retention {self.goodput_retention:.1%})"
               if self.goodput_retention is not None else ""),
        ]
        if self.mttr is not None:
            lines.append(f"  MTTR {self.mttr:.1f} ticks over "
                         f"{self.rerouted} fault-hit deliveries")
        if self.fault_stats:
            lines.append(
                "  faults: "
                + ", ".join(f"{key}={value}"
                            for key, value in self.fault_stats.items()))
        if self.recovery_actions:
            acted = {key: value
                     for key, value in self.recovery_actions.items() if value}
            lines.append(
                "  recovery: "
                + (", ".join(f"{key}={value}"
                             for key, value in acted.items()) or "(idle)"))
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    {violation}" for violation in self.violations)
        else:
            lines.append("  invariants: all held")
        return "\n".join(lines)


def build_soak_ring(
    config: SoakConfig,
    plan: Optional[FaultPlan] = None,
    with_recovery: bool = True,
) -> RMBRing:
    """The ring a soak runs on; ``plan=None`` builds the healthy twin."""
    rmb = RMBConfig(
        nodes=config.nodes,
        lanes=config.lanes,
        synchronous=not config.asynchronous,
    )
    return RMBRing(
        rmb,
        seed=config.seed,
        check_level="sampled",
        fault_plan=plan,
        recovery=(config.recovery
                  if with_recovery and plan is not None else None),
        trace_kinds=set(),      # soaks are long; tracing off
        name="soak",
    )


def _settle(ring: RMBRing, suite: Optional[MonitorSuite],
            drain_ticks: float) -> None:
    """Drain the ring, folding a drain failure into the violation log."""
    try:
        ring.drain(max_ticks=drain_ticks)
    except ProtocolError as exc:
        if suite is None:
            raise
        suite.violations.append(Violation(
            time=ring.sim.now, monitor="drain", detail=str(exc)))


def _signature(ring: RMBRing, violations: List[Violation]) -> str:
    """Deterministic digest of the run's observable outcome.

    Two runs of the same :class:`SoakConfig` must produce the same
    signature — the replay-determinism check the chaos-smoke CI job
    enforces.  Hashes every record's terminal bookkeeping plus the
    violation log.
    """
    digest = hashlib.sha256()
    digest.update(f"t={ring.sim.now!r}".encode())
    for message_id in sorted(ring.routing.records):
        record = ring.routing.records[message_id]
        digest.update(
            (f"{message_id}:{record.completed_at!r}:"
             f"{record.abandoned}:{record.shed}:{record.retries}:"
             f"{record.fault_kills}:{record.fault_nacks}").encode())
    for violation in violations:
        digest.update(str(violation).encode())
    return digest.hexdigest()


def run_soak(config: SoakConfig,
             healthy_baseline: bool = True,
             snapshot_path: Optional[str] = None) -> SoakResult:
    """Execute one soak scenario end to end.

    Args:
        config: the scenario.
        healthy_baseline: also run the same seed and schedule on a
            fault-free twin to price the goodput retention (skippable for
            cheap smoke runs).
        snapshot_path: when given and any invariant is violated, the
            failing ring is checkpointed here for offline dissection.
    """
    plan = parse_chaos_spec(config.spec, config.nodes, config.lanes,
                            seed=config.seed)
    schedule = bernoulli_schedule(
        config.nodes, int(config.ticks), config.rate, config.data_flits,
        RandomStream(config.seed, name="soak-traffic"),
    )

    ring = build_soak_ring(config, plan=plan)
    suite = MonitorSuite(ring, stuck_window=config.stuck_window)
    every(ring.sim, config.monitor_period, suite.check, label="soak.monitor")
    replay_on_ring(ring, schedule)
    ring.run(config.ticks)
    _settle(ring, suite, config.drain_ticks)
    suite.check()
    suite.check_structural()

    stats = ring.stats()
    pending = ring.routing.pending()
    duration = ring.sim.now
    goodput = stats.completed / duration if duration > 0 else 0.0
    segments_cycled = len({
        (event.segment, event.lane)
        for event in plan.events if event.action == "fail"
    })
    if snapshot_path is not None and suite.violations:
        from repro.supervision.checkpoint import save_snapshot
        save_snapshot(snapshot_path, ring,
                      meta={"soak_spec": config.spec,
                            "seed": config.seed,
                            "violations": len(suite.violations)})

    healthy_goodput: Optional[float] = None
    if healthy_baseline:
        twin = build_soak_ring(config, plan=None)
        replay_on_ring(twin, schedule)
        twin.run(config.ticks)
        _settle(twin, None, config.drain_ticks)
        twin_duration = twin.sim.now
        healthy_goodput = (twin.stats().completed / twin_duration
                           if twin_duration > 0 else 0.0)

    return SoakResult(
        config=config,
        offered=stats.offered,
        completed=stats.completed,
        abandoned=stats.abandoned,
        shed=stats.shed,
        pending=pending,
        duration=duration,
        violations=list(suite.violations),
        mttr=(stats.recovery.mean if stats.recovery.count else None),
        rerouted=stats.rerouted,
        goodput=goodput,
        healthy_goodput=healthy_goodput,
        segments_cycled=segments_cycled,
        recovery_actions=(ring.recovery.stats.summary()
                          if ring.recovery is not None else None),
        fault_stats=(ring.faults.stats.summary()
                     if ring.faults is not None else None),
        signature=_signature(ring, suite.violations),
    )

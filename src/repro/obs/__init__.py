"""Observability layer: metrics registry, per-message spans, exporters.

The paper's evaluation hinges on per-message quantities — setup latency,
Nack/retry counts, lane occupancy under compaction, odd/even cycle
progress — that :class:`~repro.core.stats.RunStats` only reports as
end-of-run aggregates.  This package gives every layer built in PRs 1–3
one consistent instrumentation API:

* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms (with quantile estimates), plus pull-style *collectors*
  that scrape engine state at export time for zero run-time cost;
* :class:`SpanCollector` — a per-message event timeline (HF-inserted →
  Hack → first-DF → Fack/Nack, with compaction lane migrations
  attached);
* exporters — Prometheus text format, a JSONL span stream, and a human
  ``obs report`` summary.

Instrumentation follows the same one-branch discipline as the PR 3
trace flag: every engine caches ``obs is not None and obs.enabled`` at
construction, so a run built without observability (or with
``level="off"``) pays one predictable branch per site and nothing else.
Observation is strictly passive — no RNG draws, no scheduling — so
enabling it never changes simulation results (property-tested in
``tests/integration/test_obs_equivalence.py``).
"""

from repro.obs.exporters import (
    escape_help,
    escape_label_value,
    parse_prometheus_text,
    prometheus_text,
    render_report,
    spans_jsonl_lines,
    unescape_label_value,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_TICK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanCollector, SpanEvent
from repro.obs.wiring import (
    OBS_LEVELS,
    CompactionCollector,
    KernelCollector,
    Observability,
    RingStateCollector,
)

__all__ = [
    "DEFAULT_TICK_BUCKETS",
    "OBS_LEVELS",
    "CompactionCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelCollector",
    "MetricsRegistry",
    "Observability",
    "RingStateCollector",
    "Span",
    "SpanCollector",
    "SpanEvent",
    "escape_help",
    "escape_label_value",
    "parse_prometheus_text",
    "prometheus_text",
    "render_report",
    "spans_jsonl_lines",
    "unescape_label_value",
    "write_prometheus",
    "write_spans_jsonl",
]

"""The metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are identified by a metric *name* plus a frozen label set —
asking the registry twice for the same (name, labels) pair returns the
same instrument, so engines resolve their instruments once at
construction and hot paths touch plain attributes.

Two acquisition styles coexist, mirroring Prometheus practice:

* **push** — engines increment counters / observe histograms at
  instrumentation points (guarded by the owner's one-branch obs flag);
* **pull** — *collectors* registered with
  :meth:`MetricsRegistry.register_collector` run only at
  :meth:`MetricsRegistry.collect` time (export / report) and scrape
  engine-owned state into gauges.  Pull metrics cost nothing during the
  run, which is how the perf benchmarks read final counts through the
  registry without perturbing the timed region.

Collectors are instances of plain classes, never closures, so a ring
carrying an armed registry still checkpoints (the same pickling rule as
:class:`~repro.sim.kernel.SimClock`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable, Optional, Union

from repro.errors import ConfigurationError

#: Default histogram layout for tick-valued quantities (setup latency,
#: stall counts, ...): powers of two from 1 to 4096 ticks.  Exponential
#: buckets track the exponential retry backoff, so each extra refusal
#: lands a sample roughly one bucket higher.
DEFAULT_TICK_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _freeze_labels(labels: dict[str, Any]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A named monotone counter (optionally labelled)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A named instantaneous value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """A fixed-bucket histogram with interpolated quantile estimates.

    Buckets are defined by ascending finite upper bounds; one implicit
    overflow bucket catches everything beyond the last bound (exported
    as ``le="+Inf"`` in Prometheus terms).  The layout is fixed at
    construction, which is what makes :meth:`merge` exact: merging two
    histograms with the same bounds is element-wise addition, so the
    merge is associative and commutative and conserves the total count
    (Hypothesis-tested in ``tests/obs/test_metrics_properties.py``).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Iterable[float] = DEFAULT_TICK_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} bucket bounds must strictly ascend, "
                f"got {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)   # last slot = overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample (bucket rule: ``value <= bound``)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (parallel aggregation).

        Raises:
            ConfigurationError: when the bucket layouts differ — merging
                mismatched layouts cannot be exact, so it is refused
                rather than approximated.
        """
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"cannot merge histogram {other.name} with bounds "
                f"{other.bounds} into {self.name} with bounds {self.bounds}")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket (monotone by construction)."""
        running = 0
        out = []
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, fraction: float) -> float:
        """Estimated ``fraction`` quantile by linear interpolation.

        Within a bucket the samples are assumed uniform between the
        previous bound (0 for the first bucket) and the bucket's bound;
        overflow samples are clamped to the largest finite bound.  The
        estimate is nondecreasing in ``fraction`` (monotone CDF).
        Returns 0 for an empty histogram.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if running + count >= target and count > 0:
                weight = (target - running) / count
                return lower + weight * (bound - lower)
            running += count
            lower = bound
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name}{dict(self.labels)} "
                f"count={self.count} sum={self.sum})")


Instrument = Union[Counter, Gauge, Histogram]

#: Prometheus metric-type tags, keyed by instrument class.
_TYPE_OF = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Owns every instrument of one run and hands them out idempotently.

    Args:
        enabled: the push-side switch.  A disabled registry still creates
            and exports instruments (so pull collectors and report code
            work identically), but engines built against it cache
            ``enabled`` into their one-branch obs flag and skip their
            instrumentation points entirely.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[tuple[str, LabelItems], Instrument] = {}
        self._help: dict[str, str] = {}
        self._types: dict[str, type] = {}
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Instrument acquisition
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter for (name, labels), created on first request."""
        return self._acquire(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The gauge for (name, labels), created on first request."""
        return self._acquire(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_TICK_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram for (name, labels), created on first request.

        The bucket layout is fixed by the *first* acquisition; later
        requests must not contradict it.
        """
        instrument = self._acquire(Histogram, name, help, labels,
                                   buckets=buckets)
        if instrument.bounds != tuple(float(b) for b in buckets):
            raise ConfigurationError(
                f"histogram {name} already registered with bounds "
                f"{instrument.bounds}")
        return instrument

    def _acquire(self, cls: type, name: str, help: str,
                 labels: dict[str, Any], **extra: Any) -> Any:
        registered = self._types.get(name)
        if registered is not None and registered is not cls:
            raise ConfigurationError(
                f"metric {name} already registered as "
                f"{_TYPE_OF[registered]}, cannot re-register as "
                f"{_TYPE_OF[cls]}")
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **extra)
            self._instruments[key] = instrument
            self._types[name] = cls
            if help and name not in self._help:
                self._help[name] = help
        return instrument

    # ------------------------------------------------------------------
    # Pull-side collectors
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Add a zero-argument callable run at every :meth:`collect`.

        Collectors scrape engine state into gauges at export time; they
        must be picklable instances (no closures) so checkpointed rings
        restore with their registry intact.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (refreshing pull gauges)."""
        for collector in self._collectors:
            collector()

    # ------------------------------------------------------------------
    # Introspection (exporters, tests, benchmarks)
    # ------------------------------------------------------------------
    def instruments(self) -> list[Instrument]:
        """Every instrument, sorted by (name, labels) for stable export."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def type_of(self, name: str) -> str:
        cls = self._types.get(name)
        return _TYPE_OF[cls] if cls is not None else ""

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        """The instrument for (name, labels) if it exists, else ``None``."""
        return self._instruments.get((name, _freeze_labels(labels)))

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Scalar value of a counter/gauge (``default`` when absent)."""
        instrument = self.get(name, **labels)
        if instrument is None or isinstance(instrument, Histogram):
            return default
        return instrument.value

    def __len__(self) -> int:
        return len(self._instruments)

"""Observability wiring: the per-run bundle and the pull collectors.

:class:`Observability` is what a run carries: one
:class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.spans.SpanCollector`, and the level that decides how
much the engines record.  Engines accept ``obs: Optional[Observability]``
and cache ``obs is not None and obs.enabled`` into a one-branch flag at
construction — exactly the trace-flag discipline — so a run built
without observability pays one predictable branch per site.

The collector classes scrape engine-owned state (kernel counters, grid
occupancy, routing aggregates, compaction stats) into gauges *at export
time only*.  This is the pull half of the registry: it costs nothing
during the run, which lets the perf benchmarks consume final counts
through the registry with ``level="off"`` and zero timed-region cost.
Collectors are plain class instances — never closures — so a ring
carrying an armed registry still checkpoints (the
:class:`~repro.sim.kernel.SimClock` pickling rule).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.obs.exporters import (
    prometheus_text,
    render_report,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector

if TYPE_CHECKING:  # pragma: no cover - annotations only (core imports us)
    from repro.core.compaction import CompactionEngine
    from repro.core.routing import RoutingEngine
    from repro.core.segments import SegmentGrid
    from repro.sim.kernel import Simulator

#: Recording levels, least to most detailed.  ``off`` arms nothing (the
#: registry still exists so pull collectors and report code work
#: identically); ``sampled`` records all metrics but only 1-in-N spans;
#: ``full`` records everything.
OBS_LEVELS = ("off", "sampled", "full")

#: Span sampling ratio at level ``sampled``: record messages whose id is
#: divisible by this.
SAMPLED_SPAN_EVERY = 8


class Observability:
    """The observability bundle one run carries.

    Args:
        level: one of :data:`OBS_LEVELS`.
        span_sample_every: span sampling ratio at level ``sampled``
            (ignored at the other levels: ``full`` records every message,
            ``off`` records none).

    Observation is strictly passive — no RNG draws, no scheduling — so
    attaching a bundle at any level never changes simulation results.
    """

    def __init__(self, level: str = "full",
                 span_sample_every: int = SAMPLED_SPAN_EVERY) -> None:
        if level not in OBS_LEVELS:
            raise ConfigurationError(
                f"obs level must be one of {OBS_LEVELS}, got {level!r}")
        self.level = level
        self.enabled = level != "off"
        self.registry = MetricsRegistry(enabled=self.enabled)
        self.spans = SpanCollector(
            sample_every=1 if level != "sampled" else span_sample_every)

    # ------------------------------------------------------------------
    # Export conveniences (thin wrappers over repro.obs.exporters)
    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """Current metrics in Prometheus text exposition format."""
        return prometheus_text(self.registry)

    def write_metrics(self, path: str) -> None:
        write_prometheus(self.registry, path)

    def write_spans(self, path: str) -> None:
        write_spans_jsonl(self.spans, path)

    def report(self) -> str:
        """The human ``obs report`` summary."""
        return render_report(self.registry, self.spans)


class KernelCollector:
    """Scrapes the simulation kernel: event throughput and queue depth."""

    def __init__(self, sim: "Simulator", registry: MetricsRegistry) -> None:
        self._sim = sim
        self._events = registry.gauge(
            "rmb_kernel_events_executed",
            help="Simulation events dispatched so far")
        self._pending = registry.gauge(
            "rmb_kernel_pending_events",
            help="Events currently queued in the kernel")
        self._now = registry.gauge(
            "rmb_kernel_time_ticks", help="Current simulation time")

    def __call__(self) -> None:
        snapshot = self._sim.metrics_snapshot()
        self._events.set(snapshot["events_executed"])
        self._pending.set(snapshot["pending_events"])
        self._now.set(snapshot["now"])


#: Routing-engine aggregate counters scraped by RingStateCollector, with
#: their HELP strings (the metric is ``rmb_routing_<attribute>``).
_ROUTING_SCRAPES = (
    ("injected", "Header flits inserted onto the ring"),
    ("established", "Circuits established (Hack reached the source)"),
    ("delivered", "Messages fully delivered (FF reached the destination)"),
    ("completed", "Messages completed (Fack returned, all ports freed)"),
    ("nacked", "Refusals by a busy destination or tap"),
    ("timed_out", "Header extension timeouts"),
    ("abandoned", "Messages abandoned after max_retries"),
    ("fault_nacked", "Refusals caused by faulty hardware"),
    ("fault_killed", "Live buses torn down by a segment death"),
    ("shed", "Submissions shed by admission control"),
    ("forced_teardowns", "Buses torn down by the watchdog"),
    ("flits_delivered", "Total flits delivered (taps included)"),
)


class RingStateCollector:
    """Scrapes one ring: routing aggregates, grid occupancy, live buses.

    ``ring`` labels every gauge with ``ring=<name>`` — fabric members
    sharing one registry each get their own instrument family.  ``None``
    (the default) keeps the historical unlabelled single-ring metrics.
    """

    def __init__(self, routing: "RoutingEngine", grid: "SegmentGrid",
                 registry: MetricsRegistry,
                 ring: Optional[str] = None) -> None:
        labels = {} if ring is None else {"ring": ring}
        self._routing = routing
        self._grid = grid
        self._scrapes = [
            (registry.gauge(f"rmb_routing_{attribute}", help=help_text,
                            **labels),
             attribute)
            for attribute, help_text in _ROUTING_SCRAPES
        ]
        self._utilization = registry.gauge(
            "rmb_grid_utilization", help="Fraction of segments occupied",
            **labels)
        self._live_buses = registry.gauge(
            "rmb_live_buses", help="Virtual buses currently holding segments",
            **labels)
        self._pending = registry.gauge(
            "rmb_pending_requests",
            help="Requests queued, deferred, in flight, or backing off",
            **labels)
        self._lanes = [
            registry.gauge("rmb_lane_occupied_segments",
                           help="Occupied segments per lane", lane=lane,
                           **labels)
            for lane in range(grid.lanes)
        ]

    def __call__(self) -> None:
        routing = self._routing
        for gauge, attribute in self._scrapes:
            gauge.set(getattr(routing, attribute))
        self._utilization.set(self._grid.utilization())
        self._live_buses.set(routing.live_bus_count())
        self._pending.set(routing.pending())
        for gauge, count in zip(self._lanes, self._grid.lane_occupancy()):
            gauge.set(count)


class CompactionCollector:
    """Scrapes compaction activity, including the D1 condition split.

    ``ring`` labels every gauge with ``ring=<name>`` (see
    :class:`RingStateCollector`).
    """

    def __init__(self, compaction: "CompactionEngine",
                 registry: MetricsRegistry,
                 ring: Optional[str] = None) -> None:
        labels = {} if ring is None else {"ring": ring}
        self._compaction = compaction
        self._registry = registry
        self._labels = labels
        self._moves = registry.gauge(
            "rmb_compaction_moves", help="Committed downward lane moves",
            **labels)
        self._cycles = registry.gauge(
            "rmb_compaction_cycles_run", help="Compaction cycles executed",
            **labels)
        self._evacuations = registry.gauge(
            "rmb_compaction_evacuations",
            help="Escape moves off dying segments", **labels)

    def __call__(self) -> None:
        stats = self._compaction.stats
        self._moves.set(stats.moves)
        self._cycles.set(stats.cycles_run)
        self._evacuations.set(stats.evacuations)
        # Condition labels (Figure 7 classification) are only known once
        # moves have happened, so these gauges materialise at scrape time.
        for condition, count in sorted(stats.condition_counts.items()):
            self._registry.gauge(
                "rmb_compaction_moves_by_condition",
                help="Committed moves split by register-sequence condition",
                condition=condition, **self._labels,
            ).set(count)

"""Exporters: Prometheus text format, JSONL span streams, human report.

The Prometheus writer follows the text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers, label values quoted with
``\\``, ``"`` and newline escaped, histograms exported as cumulative
``_bucket{le=...}`` series plus ``_sum`` / ``_count``.  A matching
parser is provided so tests can assert validity and escaping
round-trips without external dependencies.

The JSONL span writer emits one JSON object per span *event* (not per
span) with deterministic key order — a streamable, diffable format that
the committed golden fixtures byte-compare against.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free annotations
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanCollector

from repro.obs.metrics import Counter, Gauge, Histogram


# ---------------------------------------------------------------------------
# Escaping (Prometheus text exposition rules)
# ---------------------------------------------------------------------------

def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote, newline."""
    return (value.replace("\\", "\\\\")
                 .replace("\"", "\\\"")
                 .replace("\n", "\\n"))


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follower = value[index + 1]
            if follower == "\\":
                out.append("\\")
            elif follower == "\"":
                out.append("\"")
            elif follower == "n":
                out.append("\n")
            else:                      # unknown escape: literal, per spec
                out.append(follower)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def escape_help(text: str) -> str:
    """Escape a HELP string: backslash and newline only (no quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: float) -> str:
    """Integral values print without a decimal point (stable diffs)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_block(labels: Iterable[tuple[str, str]]) -> str:
    items = [f'{key}="{escape_label_value(value)}"' for key, value in labels]
    return "{" + ",".join(items) + "}" if items else ""


# ---------------------------------------------------------------------------
# Prometheus text writer
# ---------------------------------------------------------------------------

def prometheus_text(registry: "MetricsRegistry", collect: bool = True) -> str:
    """Render every instrument in Prometheus text exposition format.

    Args:
        registry: the instruments to export.
        collect: run the registry's pull collectors first (default), so
            scrape-style gauges are fresh.
    """
    if collect:
        registry.collect()
    lines: list[str] = []
    seen_header: set[str] = set()
    for instrument in registry.instruments():
        name = instrument.name
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {registry.type_of(name)}")
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(f"{name}{_label_block(instrument.labels)} "
                         f"{_format_number(instrument.value)}")
        elif isinstance(instrument, Histogram):
            cumulative = instrument.cumulative()
            for bound, running in zip(instrument.bounds, cumulative):
                labels = instrument.labels + (("le", _format_number(bound)),)
                lines.append(f"{name}_bucket{_label_block(labels)} {running}")
            labels = instrument.labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_label_block(labels)} "
                         f"{instrument.count}")
            lines.append(f"{name}_sum{_label_block(instrument.labels)} "
                         f"{_format_number(instrument.sum)}")
            lines.append(f"{name}_count{_label_block(instrument.labels)} "
                         f"{instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: "MetricsRegistry", path: str) -> None:
    """Write :func:`prometheus_text` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))


# ---------------------------------------------------------------------------
# Prometheus text parser (for tests and the CLI's format self-check)
# ---------------------------------------------------------------------------

def _parse_labels(block: str, line: str) -> tuple[tuple[str, str], ...]:
    """Parse the inside of a ``{...}`` label block."""
    labels: list[tuple[str, str]] = []
    index = 0
    while index < len(block):
        equals = block.index("=", index)
        key = block[index:equals]
        if not key.isidentifier():
            raise ValueError(f"bad label name {key!r} in line {line!r}")
        if block[equals + 1] != "\"":
            raise ValueError(f"unquoted label value in line {line!r}")
        cursor = equals + 2
        raw: list[str] = []
        while True:
            if cursor >= len(block):
                raise ValueError(f"unterminated label value in {line!r}")
            char = block[cursor]
            if char == "\\":
                raw.append(block[cursor:cursor + 2])
                cursor += 2
                continue
            if char == "\"":
                break
            raw.append(char)
            cursor += 1
        labels.append((key, unescape_label_value("".join(raw))))
        index = cursor + 1
        if index < len(block):
            if block[index] != ",":
                raise ValueError(f"expected ',' between labels in {line!r}")
            index += 1
    return tuple(labels)


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Strict enough to serve as a validity check: raises ``ValueError`` on
    malformed lines, unknown escapes are tolerated per the spec, and
    ``# HELP`` / ``# TYPE`` headers are validated for shape.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"malformed comment line {line!r}")
            if parts[1] == "TYPE" and len(parts) >= 4 and parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type in {line!r}")
            continue
        body = line
        if "{" in body:
            brace = body.index("{")
            name = body[:brace]
            close = body.rindex("}")
            labels = _parse_labels(body[brace + 1:close], line)
            rest = body[close + 1:].strip()
        else:
            name, _, rest = body.partition(" ")
            labels = ()
            rest = rest.strip()
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"bad metric name {name!r} in line {line!r}")
        value_text = rest.split()[0] if rest.split() else ""
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)    # raises ValueError when malformed
        samples[(name, labels)] = value
    return samples


# ---------------------------------------------------------------------------
# JSONL span stream
# ---------------------------------------------------------------------------

def spans_jsonl_lines(collector: "SpanCollector") -> list[str]:
    """One deterministic JSON line per span event, ordered by message id.

    Every line carries the span identity (``msg``, ``src``, ``dst``)
    plus the event's time, kind, and attributes — self-describing rows
    that stream, grep, and diff well.
    """
    lines: list[str] = []
    for span in collector.spans():
        for event in span.events:
            row: dict[str, Any] = {
                "msg": span.message_id,
                "src": span.source,
                "dst": span.destination,
                "t": event.time,
                "event": event.kind,
            }
            for key, value in event.attrs:
                row[key] = value
            lines.append(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")))
    return lines


def write_spans_jsonl(collector: "SpanCollector", path: str) -> None:
    """Write the span stream to ``path`` (one JSON object per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in spans_jsonl_lines(collector):
            handle.write(line + "\n")


# ---------------------------------------------------------------------------
# Human report
# ---------------------------------------------------------------------------

def render_report(registry: "MetricsRegistry",
                  spans: Optional["SpanCollector"] = None,
                  collect: bool = True) -> str:
    """A compact human summary: counters, histogram quantiles, gauges.

    This is the ``obs report`` exporter: what an operator reads after a
    run, as opposed to what a scraper ingests.
    """
    if collect:
        registry.collect()
    counters: list[str] = []
    gauges: list[str] = []
    histograms: list[str] = []
    for instrument in registry.instruments():
        label = instrument.name + (
            "{" + ",".join(f"{k}={v}" for k, v in instrument.labels) + "}"
            if instrument.labels else "")
        if isinstance(instrument, Counter):
            counters.append(f"  {label:<52} {_format_number(instrument.value):>12}")
        elif isinstance(instrument, Gauge):
            gauges.append(f"  {label:<52} {_format_number(instrument.value):>12}")
        elif isinstance(instrument, Histogram):
            histograms.append(
                f"  {label:<40} n={instrument.count:<7} "
                f"mean={instrument.mean:>8.1f} p50={instrument.quantile(0.5):>8.1f} "
                f"p95={instrument.quantile(0.95):>8.1f} "
                f"p99={instrument.quantile(0.99):>8.1f}")
    sections: list[str] = ["== observability report =="]
    if counters:
        sections.append("counters:")
        sections.extend(counters)
    if histograms:
        sections.append("histograms (ticks):")
        sections.extend(histograms)
    if gauges:
        sections.append("gauges (scraped at report time):")
        sections.extend(gauges)
    if spans is not None and len(spans):
        complete = [span for span in spans.spans()
                    if span.duration() is not None]
        durations = sorted(span.duration() for span in complete)
        line = (f"spans: {len(spans)} recorded "
                f"(1 in {spans.sample_every}), {len(complete)} complete")
        if durations:
            mean = sum(durations) / len(durations)
            line += (f", duration mean={mean:.1f} "
                     f"max={durations[-1]:.1f} ticks")
        sections.append(line)
    return "\n".join(sections)

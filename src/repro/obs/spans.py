"""Per-message span timelines.

A *span* is the observable lifecycle of one message, recorded as an
ordered list of timestamped events.  The milestone vocabulary follows
the protocol's flit/ack language (see :mod:`repro.core.flits`):

``submit``
    the PE handed the request to its INC (span start; carries source,
    destination and flit count);
``shed`` / ``defer`` / ``admit_deferred``
    admission-control outcomes;
``inject``
    the HF entered its insertion lane (paper: top-bus-only insertion);
``hack`` / ``nack``
    the destination accepted (Hack starts walking back) or refused;
``established``
    the Hack reached the source — the circuit is up, data may flow;
``first_data``
    the first DF left the source;
``delivered`` / ``tap_delivered``
    the FF reached the destination (or a multicast tap);
``complete``
    the Fack returned and every port was freed (span end);
``lane_move``
    compaction migrated one hop of the message's virtual bus (segment,
    lane_from → lane_to attached) — the paper's Figure 5 process, per
    message;
``fault_nack`` / ``fault_kill`` / ``header_timeout`` / ``retry`` /
``abandon`` / ``watchdog_teardown``
    the refusal/recovery machinery.

Span recording is deterministic for a fixed seed (event times come from
the simulation clock), which is what makes the committed golden JSONL
fixtures in ``tests/fixtures/`` byte-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.flits import Message


@dataclass(frozen=True)
class SpanEvent:
    """One timestamped occurrence inside a span."""

    time: float
    kind: str
    attrs: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.attrs:
            if name == key:
                return value
        return default


class Span:
    """The event timeline of one message."""

    __slots__ = ("message_id", "source", "destination", "events")

    def __init__(self, message_id: int, source: int, destination: int) -> None:
        self.message_id = message_id
        self.source = source
        self.destination = destination
        self.events: list[SpanEvent] = []

    def add(self, time: float, kind: str, **attrs: Any) -> None:
        self.events.append(
            SpanEvent(time, kind, tuple(sorted(attrs.items()))))

    def first(self, kind: str) -> Optional[SpanEvent]:
        """Earliest event of ``kind``, or ``None``."""
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def of_kind(self, kind: str) -> list[SpanEvent]:
        return [event for event in self.events if event.kind == kind]

    def milestones(self) -> dict[str, float]:
        """First-occurrence time of each event kind."""
        seen: dict[str, float] = {}
        for event in self.events:
            seen.setdefault(event.kind, event.time)
        return seen

    def duration(self) -> Optional[float]:
        """submit → complete span length, ``None`` while incomplete."""
        start = self.first("submit")
        end = self.first("complete")
        if start is None or end is None:
            return None
        return end.time - start.time

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SpanEvent]:
        return iter(self.events)


class SpanCollector:
    """Accumulates spans, optionally sampling 1-in-N messages.

    Args:
        sample_every: record only messages whose id is divisible by this
            (1 = record everything).  Sampling by id rather than by a
            random draw keeps span output deterministic and keeps the
            simulation's RNG streams untouched.

    A span exists only if :meth:`begin` created it, so :meth:`event`
    on an unsampled message is a dictionary miss and nothing more —
    instrumentation sites never need to know about sampling.
    """

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._spans: dict[int, Span] = {}

    def wants(self, message_id: int) -> bool:
        """Would a message with this id be recorded?"""
        return message_id % self.sample_every == 0

    def begin(self, message: Message, time: float) -> None:
        """Open the span for ``message`` with its ``submit`` event."""
        if message.message_id % self.sample_every != 0:
            return
        if message.message_id in self._spans:
            return  # duplicate submit is the routing engine's error to raise
        span = Span(message.message_id, message.source, message.destination)
        span.add(time, "submit", flits=message.data_flits,
                 taps=len(message.extra_destinations))
        self._spans[message.message_id] = span

    def event(self, message_id: int, time: float, kind: str,
              **attrs: Any) -> None:
        """Append an event to an open span (no-op when unsampled)."""
        span = self._spans.get(message_id)
        if span is not None:
            span.add(time, kind, **attrs)

    def spans(self) -> list[Span]:
        """Every recorded span, ordered by message id."""
        return [self._spans[key] for key in sorted(self._spans)]

    def get(self, message_id: int) -> Optional[Span]:
        return self._spans.get(message_id)

    def __len__(self) -> int:
        return len(self._spans)

"""Real-time multimedia sessions on the RMB — the introduction's claim
that delivering data within an acceptable delay is what matters.

Usage:
    python examples/realtime_streams.py [nodes] [lanes] [sessions]

Spreads periodic frame streams around the ring and prints per-session
deadline statistics, then pushes the session count up to show where the
fabric's deadline cliff is.
"""

from __future__ import annotations

import sys

from repro.analysis import render_series, render_table
from repro.apps import StreamDriver, evenly_spread_sessions
from repro.core import RMBConfig


def run(nodes, lanes, count):
    driver = StreamDriver(
        RMBConfig(nodes=nodes, lanes=lanes, cycle_period=2.0), seed=7
    )
    sessions = evenly_spread_sessions(
        nodes, count=count, span=3, period=48.0, frame_flits=16,
        deadline=48.0, frames=10,
    )
    return driver.run(sessions)


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    lanes = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    count = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    reports = run(nodes, lanes, count)
    print(render_table(
        [report.as_dict() for report in reports],
        title=(f"{count} concurrent stream sessions, N={nodes}, "
               f"k={lanes}, 16-flit frames / 48 ticks, deadline = period"),
    ))

    print()
    xs, ys = [], []
    for session_count in range(2, nodes + 1, 2):
        reports = run(nodes, lanes, session_count)
        total = sum(r.delivered + r.missed for r in reports)
        missed = sum(r.missed for r in reports)
        xs.append(session_count)
        ys.append(100.0 * missed / total)
    print(render_series(
        "deadline miss rate vs concurrent sessions",
        xs, ys, x_label="sessions", y_label="% missed",
    ))


if __name__ == "__main__":
    main()

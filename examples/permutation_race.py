"""Race the RMB against the paper's comparison networks on permutation
traffic — the behavioural companion to Section 3.

Usage:
    python examples/permutation_race.py [nodes] [k] [family]

    nodes   power-of-two perfect square (default 16)
    k       lane count / permutation capability (default 4)
    family  one of: random, bit-reversal, bit-complement, shuffle,
            transpose, butterfly, ring-shift, tornado, neighbor
"""

from __future__ import annotations

import sys

from repro.analysis import render_comparison
from repro.networks import (
    EXTRA_NETWORKS,
    PAPER_NETWORKS,
    build_network,
    make_batch,
    permutation_pairs,
)
from repro.sim import RandomStream
from repro.traffic import generate


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    family = sys.argv[3] if len(sys.argv) > 3 else "random"

    rng = RandomStream(2024)
    perm = generate(family, nodes, rng)
    batch_pairs = permutation_pairs(perm)
    print(f"{family} permutation on N={nodes}, k={k}, "
          f"{sum(1 for s, d in batch_pairs if s != d)} messages, "
          "16 data flits each\n")

    rows = []
    for name in PAPER_NETWORKS + EXTRA_NETWORKS:
        network = build_network(name, nodes, k, seed=1)
        result = network.route_batch(make_batch(batch_pairs, data_flits=16),
                                     max_ticks=2_000_000)
        rows.append(result.row())
    print(render_comparison(
        "Delivery race (lower is better)",
        rows, baseline_key="rmb", value_key="makespan",
    ))
    print("\nNotes: the hypercube family wins raw makespan on scattered "
          "traffic (its bisection is N/2 vs the RMB's k);\nthe paper's "
          "counter-argument is hardware cost — see "
          "benchmarks/bench_cost_table.py and examples/cost_explorer.py.")


if __name__ == "__main__":
    main()

"""Watch the compaction protocol work — the animated version of the
paper's Figures 2/3/5.

Three long transfers enter the ring on the top lane a few ticks apart;
the printed frames show each virtual bus drawn at lane 3 and then sinking
to the lowest free lanes while its data is still streaming, leaving the
top lane clear for the next request.

Run:
    python examples/compaction_trace.py
"""

from __future__ import annotations

from repro import Message, RMBConfig, RMBRing
from repro.core import render_grid


def main() -> None:
    config = RMBConfig(nodes=12, lanes=4, cycle_period=2.0)
    ring = RMBRing(config, seed=0)

    # Three overlapping long transfers, staggered so each one's header
    # finds the top lane already released by compaction.
    ring.sim.schedule_at(0, lambda: ring.submit(
        Message(0, 0, 8, data_flits=120)))
    ring.sim.schedule_at(14, lambda: ring.submit(
        Message(1, 2, 10, data_flits=120)))
    ring.sim.schedule_at(28, lambda: ring.submit(
        Message(2, 4, 0, data_flits=120)))

    for frame in range(10):
        print(f"--- t = {ring.sim.now:5.1f}   "
              f"cycle = {ring.cycle_count():3d}   "
              f"live buses = {ring.routing.live_bus_count()}")
        print(render_grid(ring.grid))
        print()
        ring.run(8)

    ring.drain()
    stats = ring.stats()
    print(f"all {stats.completed} transfers completed; "
          f"{ring.compaction.stats.moves} compaction moves were made")
    print("conditions exercised (paper Figure 7):")
    for condition, count in sorted(
            ring.compaction.stats.condition_counts.items()):
        print(f"  {condition:45s} {count}")


if __name__ == "__main__":
    main()

"""Quickstart: build an RMB ring, send messages, read statistics.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Message, RMBConfig, RMBRing
from repro.analysis import render_table


def main() -> None:
    # A 16-node ring with 4 reconfigurable bus lanes between neighbours.
    config = RMBConfig(nodes=16, lanes=4)
    ring = RMBRing(config, seed=0, probe_period=8.0)

    # Every node sends one 32-flit message five hops clockwise.
    for node in range(config.nodes):
        ring.submit(Message(message_id=node, source=node,
                            destination=(node + 5) % config.nodes,
                            data_flits=32))

    elapsed = ring.drain()
    stats = ring.stats()

    print(f"Drained {stats.completed}/{stats.offered} messages "
          f"in {elapsed:.0f} ticks\n")
    rows = [{"metric": key, "value": round(value, 3)}
            for key, value in stats.summary().items()]
    print(render_table(rows, title="Run statistics"))

    print("\nPer-message lifecycle (first 5):")
    lifecycle = []
    for record in list(ring.routing.records.values())[:5]:
        lifecycle.append({
            "msg": record.message.message_id,
            "route": f"{record.message.source}->"
                     f"{record.message.destination}",
            "injected": record.injected_at,
            "established": record.established_at,
            "delivered": record.delivered_at,
            "lanes visited": sorted(record.lanes_visited),
        })
    print(render_table(lifecycle))


if __name__ == "__main__":
    main()

"""Multicast on virtual buses — the extension the paper defers.

One header flit draws a single virtual bus through every receiver; each
tap reads the shared flit stream as it passes.  The script compares the
fan-out cost against serial unicasts from the same sender.

Usage:
    python examples/multicast_fanout.py [nodes] [lanes]
"""

from __future__ import annotations

import sys

from repro import Message, RMBConfig, RMBRing
from repro.analysis import render_table


def run_multicast(nodes, lanes, receivers, flits):
    ring = RMBRing(RMBConfig(nodes=nodes, lanes=lanes, cycle_period=2.0),
                   seed=0)
    record = ring.submit(Message(
        0, 0, receivers[-1], data_flits=flits,
        extra_destinations=tuple(receivers[:-1]),
    ))
    makespan = ring.drain()
    return makespan, record


def run_serial(nodes, lanes, receivers, flits):
    ring = RMBRing(RMBConfig(nodes=nodes, lanes=lanes, cycle_period=2.0),
                   seed=0)
    for index, destination in enumerate(receivers):
        ring.submit(Message(index, 0, destination, data_flits=flits))
    return ring.drain()


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    lanes = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    flits = 48

    rows = []
    for fan_out in (1, 2, 3, 5, 7):
        stride = max(1, (nodes // 2) // fan_out)
        receivers = [1 + stride * index for index in range(fan_out)]
        multicast_time, record = run_multicast(nodes, lanes, receivers,
                                               flits)
        serial_time = run_serial(nodes, lanes, receivers, flits)
        rows.append({
            "receivers": fan_out,
            "multicast ticks": multicast_time,
            "serial unicast ticks": serial_time,
            "speedup": round(serial_time / multicast_time, 2),
            "tap deliveries": len(record.tap_delivered_at),
        })
    print(render_table(
        rows,
        title=f"Multicast vs serial unicast, N={nodes}, k={lanes}, "
              f"{flits}-flit payload",
    ))
    print("\nOne circuit, one payload transmission, every tap reads the "
          "stream in place:\nfan-out is almost free on the wire — the "
          "extension the paper predicted would work.")


if __name__ == "__main__":
    main()

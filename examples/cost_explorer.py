"""Explore the Section 3.2 hardware cost models across design points.

Usage:
    python examples/cost_explorer.py [k]

Prints the links / cross-points / area comparison for a sweep of system
sizes at a fixed permutation capability k, plus the area advantage chart
the paper's Review paragraph argues from.
"""

from __future__ import annotations

import sys

from repro.analysis import area_advantage, cost_table, render_series, render_table


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    for nodes in (64, 256, 1024):
        rows = [row.as_dict() for row in cost_table(nodes, k)]
        print(render_table(
            rows,
            columns=["architecture", "links", "cross_points", "area",
                     "wire_length"],
            title=f"N={nodes}, k={k}",
        ))
        print()

    advantage = area_advantage(1024, k)
    print(render_series(
        f"VLSI area relative to the RMB (N=1024, k={k}) — log-scale story",
        list(advantage.keys()),
        list(advantage.values()),
        x_label="architecture",
        y_label="area / rmb",
    ))
    print(
        "\nPaper review reproduced: the RMB beats the hypercube family and "
        "the fat tree\non area and cross-points at equal k-permutation "
        "capability, ties the mesh, and\nis the only entrant with "
        "constant-length wires."
    )


if __name__ == "__main__":
    main()

"""HPC collective operations on the RMB — the workloads the paper's
introduction says the network exists for.

Usage:
    python examples/hpc_collectives.py [nodes] [lanes]

Runs ring-shift, ring-allreduce, all-to-all, multicast broadcast and a
barrier on a fresh ring each, and prints the timing table plus the
per-round profile of the all-to-all (whose round r is a shift-by-r
permutation — watch the cost peak at the long shifts).
"""

from __future__ import annotations

import sys

from repro.analysis import render_series, render_table
from repro.apps import CollectiveDriver, STANDARD_COLLECTIVES
from repro.core import RMBConfig


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    lanes = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    driver = CollectiveDriver(
        RMBConfig(nodes=nodes, lanes=lanes, cycle_period=2.0), seed=1
    )
    rows = []
    all_to_all_profile = None
    for name, run in STANDARD_COLLECTIVES.items():
        result = run(driver)
        rows.append(result.as_dict())
        if name == "all-to-all":
            all_to_all_profile = result.round_ticks
    print(render_table(
        rows, title=f"Collectives on an RMB ring, N={nodes}, k={lanes}",
    ))

    if all_to_all_profile:
        print()
        print(render_series(
            "all-to-all per-round cost (round r = shift-by-r permutation)",
            [f"r={r}" for r in range(1, len(all_to_all_profile) + 1)],
            all_to_all_profile,
            x_label="round", y_label="ticks",
        ))
    print(
        "\nShort shifts ride many concurrent virtual buses on few lanes; "
        "long shifts\nsaturate the ring's bisection (k) and the rounds "
        "serialise — the same capacity\nstory as experiments E13/E15."
    )


if __name__ == "__main__":
    main()

"""Print the reproduction status of every paper artefact.

Usage:
    python examples/experiment_index.py

Reads the machine-readable experiment registry and reports, for each of
E1-E25, whether its benchmark exists and whether an archived result from
the last `pytest benchmarks/` run is present under `benchmarks/results/`.
"""

from __future__ import annotations

from repro.analysis.experiments import EXPERIMENTS, benchmarks_dir, registry_status
from repro.analysis.tables import render_table


def main() -> None:
    bench_dir = benchmarks_dir()
    rows = registry_status(bench_dir)
    print(render_table(
        rows,
        columns=["id", "title", "paper artefact", "kind",
                 "bench exists", "result archived"],
        title=f"Reproduction index ({len(EXPERIMENTS)} experiments) — "
              f"benchmarks at {bench_dir}",
    ))
    kinds = {}
    for experiment in EXPERIMENTS:
        kinds[experiment.kind] = kinds.get(experiment.kind, 0) + 1
    print(
        f"\n{kinds.get('exact', 0)} exact reproductions, "
        f"{kinds.get('behavioural', 0)} behavioural property checks, "
        f"{kinds.get('new', 0)} analyses the paper proposed or omitted.\n"
        "Regenerate all archived results with:  pytest benchmarks/"
    )


if __name__ == "__main__":
    main()

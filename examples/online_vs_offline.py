"""Competitiveness of the on-line RMB protocol vs an offline scheduler —
the paper's Section 4 'future research', carried out.

Usage:
    python examples/online_vs_offline.py [nodes] [k]

For growing message batches the script reports the on-line makespan, the
certified offline lower bound, a feasible greedy offline schedule, and
the bracketing competitiveness ratios.
"""

from __future__ import annotations

import sys

from repro.analysis import measure_competitiveness, render_table
from repro.core import RMBConfig
from repro.sim import RandomStream
from repro.traffic import permutation_messages, random_derangement


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    rng = RandomStream(7)

    rows = []
    for flits in (4, 16, 64):
        for waves in (1, 2, 4):
            messages = []
            for wave in range(waves):
                messages.extend(permutation_messages(
                    random_derangement(nodes, rng), flits,
                    start_id=wave * nodes,
                ))
            report = measure_competitiveness(
                RMBConfig(nodes=nodes, lanes=k, cycle_period=2.0),
                messages, seed=rng.randint(0, 2**30),
            )
            row = report.as_dict()
            row["flits"] = flits
            row["waves"] = waves
            rows.append(row)

    print(render_table(
        rows,
        columns=["flits", "waves", "messages", "online", "offline_LB",
                 "offline_greedy", "ratio_vs_LB", "ratio_vs_greedy"],
        title=f"On-line RMB vs offline schedules, N={nodes}, k={k}",
    ))
    print(
        "\nThe true competitive ratio lies between the two ratio columns: "
        "the LB column\ncharges the online protocol for slack no schedule "
        "could avoid, the greedy\ncolumn compares against a plan a real "
        "offline scheduler could execute."
    )


if __name__ == "__main__":
    main()

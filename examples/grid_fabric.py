"""A 2-D grid of RMB rings — the paper's closing future-work direction,
running.

Every row and column of a processor grid is its own RMB ring; messages
ride their row ring to the destination column, turn (store-and-forward
through the turning node's PE), and ride the column ring to the
destination row.

Usage:
    python examples/grid_fabric.py [rows] [cols] [lanes]
"""

from __future__ import annotations

import sys

from repro.analysis import render_table
from repro.grid import RMBGrid
from repro.sim import RandomStream


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    lanes = int(sys.argv[3]) if len(sys.argv) > 3 else 2

    grid = RMBGrid(rows, cols, lanes=lanes)
    rng = RandomStream(5)
    nodes = grid.nodes
    count = nodes * 2
    for index in range(count):
        source = rng.randint(0, nodes - 1)
        destination = (source + rng.randint(1, nodes - 1)) % nodes
        grid.submit(index, source, destination, data_flits=16)

    makespan = grid.drain()
    tally = grid.latency_tally()
    single = [record for record in grid.records.values()
              if record.legs_total == 1]
    double = [record for record in grid.records.values()
              if record.legs_total == 2]

    print(f"{grid.describe()}: {grid.completed()}/{count} journeys "
          f"completed in {makespan:.0f} ticks\n")
    rows_out = [
        {"metric": "mean journey latency", "value": round(tally.mean, 1)},
        {"metric": "max journey latency", "value": tally.maximum},
        {"metric": "single-leg journeys (same row/column)",
         "value": len(single)},
        {"metric": "two-leg journeys (row then column)",
         "value": len(double)},
        {"metric": "mean wait before the turn",
         "value": round(grid.turn_latency.mean, 1)},
    ]
    print(render_table(rows_out, title="Grid fabric summary"))

    busiest = max(grid.row_rings + grid.col_rings,
                  key=lambda ring: ring.routing.completed)
    print(f"\nbusiest ring: {busiest.name} carried "
          f"{busiest.routing.completed} legs, "
          f"{busiest.compaction.stats.moves} compaction moves")


if __name__ == "__main__":
    main()

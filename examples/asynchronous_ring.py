"""Run the RMB with fully asynchronous INC clocks — Section 2.5 live.

Every INC gets an independent clock (random phase, frequency error and
edge jitter).  The odd/even handshake (rules 1-5) keeps neighbouring
cycle counts within one of each other (Lemma 1) while traffic flows and
compaction keeps packing buses.

Usage:
    python examples/asynchronous_ring.py [nodes] [drift%]
"""

from __future__ import annotations

import sys

from repro import Message, RMBConfig, RMBRing
from repro.analysis import render_table
from repro.core import max_neighbour_skew


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    drift = (float(sys.argv[2]) / 100) if len(sys.argv) > 2 else 0.05

    config = RMBConfig(nodes=nodes, lanes=4, synchronous=False,
                       clock_drift=drift, clock_jitter_fraction=0.1)
    ring = RMBRing(config, seed=11)
    for index in range(nodes):
        ring.submit(Message(index, index, (index + nodes // 3) % nodes,
                            data_flits=24))

    worst_skew = 0
    samples = []
    while ring.routing.pending() > 0:
        ring.run(16)
        skew = max_neighbour_skew(ring.controllers)
        worst_skew = max(worst_skew, skew)
        samples.append({
            "t": ring.sim.now,
            "min cycle": min(c.cycle for c in ring.controllers),
            "max cycle": max(c.cycle for c in ring.controllers),
            "neighbour skew": skew,
            "live buses": ring.routing.live_bus_count(),
        })

    print(render_table(samples[:20],
                       title=f"Asynchronous RMB, N={nodes}, "
                             f"drift ±{drift:.0%}, jitter ±10%"))
    stats = ring.stats()
    print(f"\ncompleted {stats.completed}/{stats.offered} messages; "
          f"worst neighbour cycle skew ever observed: {worst_skew} "
          "(Lemma 1 bound: 1)")


if __name__ == "__main__":
    main()
